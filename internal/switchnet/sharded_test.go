package switchnet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"golapi/internal/parallel"
	"golapi/internal/sim"
)

// TestShardedUngated pins the post-gate contract: configs with interior
// contention (SpineLinks, FatTreeLevels) and zero-latency configs are all
// shardable now; only configs that admit no positive lookahead window at
// all are rejected, with an error that says why instead of silently
// running serial.
func TestShardedUngated(t *testing.T) {
	mk := func() []*sim.Engine { return []*sim.Engine{sim.NewEngine(), sim.NewEngine()} }

	cfg := DefaultConfig()
	cfg.WireLatency = 0
	if _, err := NewSharded(mk(), 4, cfg); err != nil {
		t.Errorf("sharded switch with zero WireLatency rejected: %v", err)
	}
	cfg = DefaultConfig()
	cfg.SpineLinks = 4
	if _, err := NewSharded(mk(), 4, cfg); err != nil {
		t.Errorf("sharded switch with SpineLinks rejected: %v", err)
	}
	cfg = DefaultConfig()
	cfg.FatTreeLevels = []int{2, 1}
	cfg.FatTreeArity = 2
	if _, err := NewSharded(mk(), 4, cfg); err != nil {
		t.Errorf("sharded switch with fat tree rejected: %v", err)
	}
	if _, err := NewSharded(mk(), 1, DefaultConfig()); err == nil {
		t.Error("more shards than endpoints accepted")
	}

	// Unshardable: zero latency AND a minimum service time that rounds to
	// zero virtual nanoseconds. The error must be descriptive.
	cfg = DefaultConfig()
	cfg.WireLatency = 0
	cfg.Bandwidth = 2e9
	_, err := NewSharded(mk(), 4, cfg)
	if err == nil {
		t.Fatal("unshardable zero-window config accepted")
	}
	for _, want := range []string{"unshardable", "micro-epoch", "rounds to 0 ns"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("zero-window error %q does not mention %q", err, want)
		}
	}

	// Unshardable: zero latency AND zero-byte acks (an ack could cross
	// shards in zero virtual time).
	cfg = DefaultConfig()
	cfg.WireLatency = 0
	cfg.AckBytes = 0
	_, err = NewSharded(mk(), 4, cfg)
	if err == nil {
		t.Fatal("unshardable zero-ack config accepted")
	}
	for _, want := range []string{"unshardable", "AckBytes", "micro-epochs"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("zero-ack error %q does not mention %q", err, want)
		}
	}

	// Both unshardable configs remain fine on a single engine (no
	// coordinator, no window needed).
	if _, err := New(sim.NewEngine(), 4, cfg); err != nil {
		t.Errorf("single-engine switch with zero-window config rejected: %v", err)
	}
}

func TestShardLookahead(t *testing.T) {
	cfg := DefaultConfig() // WireLatency 8µs
	la, err := cfg.shardLookahead()
	if err != nil || la != sim.Time(8*time.Microsecond) {
		t.Errorf("lookahead = %v, %v; want the wire latency", la, err)
	}
	cfg.WireLatency = 0 // 102 MB/s: one byte ≈ 9.8 ns on the wire
	la, err = cfg.shardLookahead()
	if err != nil || la != sim.Time(cfg.wireTime(1)) {
		t.Errorf("micro-epoch lookahead = %v, %v; want wireTime(1)=%v", la, err, cfg.wireTime(1))
	}
	if la < 1 {
		t.Errorf("micro-epoch lookahead %v is not positive", la)
	}
}

func TestShardOf(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine(), sim.NewEngine()}
	sw, err := NewSharded(engines, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for r := 0; r < 8; r++ {
		s := sw.ShardOf(r)
		if s < prev || s > 2 {
			t.Errorf("rank %d on shard %d (prev %d): blocks must be contiguous", r, s, prev)
		}
		prev = s
	}
	if sw.ShardOf(0) != 0 || sw.ShardOf(7) != 2 {
		t.Errorf("endpoint shards: %d, %d", sw.ShardOf(0), sw.ShardOf(7))
	}
}

type delivery struct {
	at   sim.Time
	from string
}

// runMesh drives raw adapters (no protocol layers) through
// parallel.RunEpochs with all-to-all traffic — every rank sends msgs
// packets to every other rank, staggered by sender — and returns per-rank
// delivery logs (virtual time + payload identity).
func runMesh(t *testing.T, cfg Config, shards, n, msgs int) [][]delivery {
	t.Helper()
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	sw, err := NewSharded(engines, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([][]delivery, n)
	for i := 0; i < n; i++ {
		i := i
		ad := sw.Endpoint(i)
		ad.SetDeliver(func(src int, data []byte) {
			logs[i] = append(logs[i], delivery{ad.eng.Now(), fmt.Sprintf("%d:%s", src, data)})
		})
	}
	for i := 0; i < n; i++ {
		i := i
		ad := sw.Endpoint(i)
		ad.eng.Schedule(time.Duration(i)*time.Microsecond, func() {
			for m := 0; m < msgs; m++ {
				for d := 0; d < n; d++ {
					if d != i {
						ad.Send(nil, d, []byte(fmt.Sprintf("m%d", m)), nil)
					}
				}
			}
		})
	}
	err = parallel.RunEpochs(parallel.New(shards), engines, sw.Lookahead(), parallel.Hooks{
		TakeOutbox: sw.TakeOutbox,
		Barrier:    sw.ResolveSpine,
		Stats:      &sw.Counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	return logs
}

// TestShardedDeliveryMatchesSerial checks, for every newly ungated regime
// (contended spine, zero wire latency, fat tree, and spine+zero-latency
// combined), that every delivery lands at the same virtual time, in the
// same per-rank order, as the single-engine switch — including under
// deterministic reordering and drops, which exercise retransmission
// timers and duplicate acks across shard boundaries and through the
// barrier-arbitrated interior.
func TestShardedDeliveryMatchesSerial(t *testing.T) {
	base := DefaultConfig()
	base.ReorderEvery = 3
	base.DropEvery = 5

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"crossbar", func(c *Config) {}},
		{"spine", func(c *Config) { c.SpineLinks = 2 }},
		{"zerolat", func(c *Config) { c.WireLatency = 0 }},
		{"fattree", func(c *Config) { c.FatTreeLevels = []int{2, 1}; c.FatTreeArity = 2 }},
		{"spine-zerolat", func(c *Config) { c.SpineLinks = 2; c.WireLatency = 0 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			const n, msgs = 8, 6
			want := runMesh(t, cfg, 1, n, msgs)
			for _, shards := range []int{2, 4, 8} {
				got := runMesh(t, cfg, shards, n, msgs)
				for r := range want {
					if len(got[r]) != len(want[r]) {
						t.Fatalf("shards=%d rank %d: %d deliveries, serial %d", shards, r, len(got[r]), len(want[r]))
					}
					for k := range want[r] {
						if got[r][k] != want[r][k] {
							t.Fatalf("shards=%d rank %d delivery %d: %+v, serial %+v", shards, r, k, got[r][k], want[r][k])
						}
					}
				}
			}
		})
	}
}

// TestShardedFatTreeHammer is the -race workout for the barrier-resolved
// interior: a fat-tree mesh with drop injection (retransmission timers
// firing near shard boundaries) driven by a real worker pool. Run with
// -race via `make check`; correctness here is just completion plus
// conservation (every rank eventually receives every payload exactly
// once).
func TestShardedFatTreeHammer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FatTreeLevels = []int{4, 2}
	cfg.FatTreeArity = 2
	cfg.DropEvery = 4
	cfg.ReorderEvery = 7
	const n, msgs, shards = 8, 12, 4
	logs := runMesh(t, cfg, shards, n, msgs)
	for r := 0; r < n; r++ {
		if len(logs[r]) != (n-1)*msgs {
			t.Errorf("rank %d: %d deliveries, want %d", r, len(logs[r]), (n-1)*msgs)
		}
		seen := make(map[string]bool)
		for _, d := range logs[r] {
			if seen[d.from] {
				t.Errorf("rank %d: duplicate delivery %q", r, d.from)
			}
			seen[d.from] = true
		}
	}
}

// TestFatTreeSerialContention pins the fat-tree interior model on a
// single engine: two pairs in different leaf groups share the one root
// link, so their packets serialize; two pairs inside one leaf group never
// touch the interior and keep crossbar timing.
func TestFatTreeSerialContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FatTreeLevels = []int{1} // one root pool with a single link
	cfg.FatTreeArity = 2

	arrivals := func(pairs [][2]int) map[int]sim.Time {
		eng := sim.NewEngine()
		sw, err := New(eng, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		at := make(map[int]sim.Time)
		for _, pr := range pairs {
			dst := pr[1]
			sw.Endpoint(dst).SetDeliver(func(src int, data []byte) { at[dst] = eng.Now() })
			sw.Endpoint(pr[0]).Send(nil, dst, make([]byte, cfg.PacketBytes), nil)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}

	// Intra-leaf: 0→1 and 2→3 (leaf groups {0,1} and {2,3}) bypass the
	// interior entirely and land at the same instant.
	intra := arrivals([][2]int{{0, 1}, {2, 3}})
	if intra[1] != intra[3] {
		t.Errorf("intra-leaf pairs contend: %v vs %v", intra[1], intra[3])
	}
	// Cross-leaf: 0→2 and 4→6 both need the single root link — and each
	// crosses it twice (up and down land in the same one-link pool), so
	// the loser is delayed by two full packet wire times.
	cross := arrivals([][2]int{{0, 2}, {4, 6}})
	if cross[2] == cross[6] {
		t.Error("cross-leaf pairs did not contend on the root link")
	}
	gap := cross[6] - cross[2]
	if gap < 0 {
		gap = -gap
	}
	if gap != 2*sim.Time(cfg.wireTime(cfg.PacketBytes)) {
		t.Errorf("contention gap %v, want two packet wire times %v", gap, 2*cfg.wireTime(cfg.PacketBytes))
	}
	// A same-leaf pair in the same run is unaffected by the root-link
	// contention happening beside it: its arrival matches the pure
	// intra-leaf run.
	mixed := arrivals([][2]int{{0, 2}, {4, 6}, {1, 0}})
	if mixed[0] != intra[1] {
		t.Errorf("intra-leaf arrival %v shifted by unrelated root contention (want %v)", mixed[0], intra[1])
	}
}
