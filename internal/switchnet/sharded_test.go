package switchnet

import (
	"fmt"
	"testing"
	"time"

	"golapi/internal/parallel"
	"golapi/internal/sim"
)

func TestShardedGating(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	cfg := DefaultConfig()
	cfg.WireLatency = 0
	if _, err := NewSharded(engines, 4, cfg); err == nil {
		t.Error("sharded switch with zero WireLatency accepted")
	}
	cfg = DefaultConfig()
	cfg.SpineLinks = 4
	if _, err := NewSharded(engines, 4, cfg); err == nil {
		t.Error("sharded switch with SpineLinks accepted")
	}
	if _, err := NewSharded(engines, 1, DefaultConfig()); err == nil {
		t.Error("more shards than endpoints accepted")
	}
	// Single-engine New still accepts both (no sharding involved).
	cfg = DefaultConfig()
	cfg.SpineLinks = 4
	if _, err := New(sim.NewEngine(), 4, cfg); err != nil {
		t.Errorf("single-engine switch with SpineLinks rejected: %v", err)
	}
}

func TestShardOf(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine(), sim.NewEngine()}
	sw, err := NewSharded(engines, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for r := 0; r < 8; r++ {
		s := sw.ShardOf(r)
		if s < prev || s > 2 {
			t.Errorf("rank %d on shard %d (prev %d): blocks must be contiguous", r, s, prev)
		}
		prev = s
	}
	if sw.ShardOf(0) != 0 || sw.ShardOf(7) != 2 {
		t.Errorf("endpoint shards: %d, %d", sw.ShardOf(0), sw.ShardOf(7))
	}
}

// TestShardedDeliveryMatchesSerial drives raw adapters (no protocol
// layers) through parallel.RunEpochs and checks every delivery lands at
// the same virtual time, in the same per-rank order, as the single-engine
// switch — including under deterministic reordering and drops, which
// exercise retransmission timers and duplicate acks across the shard
// boundary.
func TestShardedDeliveryMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReorderEvery = 3
	cfg.DropEvery = 5

	type delivery struct {
		at   sim.Time
		from string
	}
	// run returns per-rank delivery logs. All-to-all traffic: every rank
	// sends msgs packets to every other rank, staggered by sender.
	run := func(shards int) [][]delivery {
		const n, msgs = 4, 6
		engines := make([]*sim.Engine, shards)
		for i := range engines {
			engines[i] = sim.NewEngine()
		}
		sw, err := NewSharded(engines, n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		logs := make([][]delivery, n)
		for i := 0; i < n; i++ {
			i := i
			ad := sw.Endpoint(i)
			ad.SetDeliver(func(src int, data []byte) {
				logs[i] = append(logs[i], delivery{ad.eng.Now(), fmt.Sprintf("%d:%s", src, data)})
			})
		}
		for i := 0; i < n; i++ {
			i := i
			ad := sw.Endpoint(i)
			ad.eng.Schedule(time.Duration(i)*time.Microsecond, func() {
				for m := 0; m < msgs; m++ {
					for d := 0; d < n; d++ {
						if d != i {
							ad.Send(nil, d, []byte(fmt.Sprintf("m%d", m)), nil)
						}
					}
				}
			})
		}
		if err := parallel.RunEpochs(parallel.New(shards), engines, sw.Lookahead(), sw.TakeOutbox, nil); err != nil {
			t.Fatal(err)
		}
		return logs
	}

	want := run(1)
	for _, shards := range []int{2, 4} {
		got := run(shards)
		for r := range want {
			if len(got[r]) != len(want[r]) {
				t.Fatalf("shards=%d rank %d: %d deliveries, serial %d", shards, r, len(got[r]), len(want[r]))
			}
			for k := range want[r] {
				if got[r][k] != want[r][k] {
					t.Fatalf("shards=%d rank %d delivery %d: %+v, serial %+v", shards, r, k, got[r][k], want[r][k])
				}
			}
		}
	}
}
