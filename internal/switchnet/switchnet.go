// Package switchnet models the IBM SP high-performance switch as a
// discrete-event simulation: a full crossbar of nodes whose adapters inject
// fixed-size packets onto links with finite bandwidth and latency.
//
// The model captures exactly the properties the paper's protocol arguments
// rest on:
//
//   - fixed packet size (1 KB on the SP switch) — protocol headers eat into
//     per-packet payload, which is why LAPI's 48-byte header costs it peak
//     bandwidth against MPI's 16-byte header;
//   - link serialization — a node's outgoing link fits one packet at a
//     time, so asymptotic bandwidth = payload / packet wire time;
//   - out-of-order delivery — the switch may reorder packets between the
//     same pair of nodes (LAPI's reassembly machinery exists because of
//     this);
//   - unreliability — packets can be dropped; the adapter layer provides
//     acknowledgements and retransmission, which is why LAPI copies small
//     messages into internal buffers before returning to the user.
//
// CPU costs (send/receive overheads, interrupts, memory copies) are NOT
// modelled here; they belong to the protocol layers, which charge them to
// the calling context. The switch models only wire time, propagation and
// adapter queueing.
package switchnet

import (
	"fmt"
	"sort"
	"time"

	"golapi/internal/exec"
	"golapi/internal/fabric"
	"golapi/internal/parallel"
	"golapi/internal/sim"
	"golapi/internal/stats"
)

// Config describes the fabric. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// PacketBytes is the maximum wire packet size, including protocol
	// headers (SP switch: 1024).
	PacketBytes int
	// AckBytes is the wire size of an adapter-level acknowledgement.
	AckBytes int
	// Bandwidth is the link rate in bytes per second.
	Bandwidth float64
	// WireLatency is propagation plus switch traversal time per packet.
	WireLatency time.Duration
	// RTO is the retransmission timeout for unacknowledged packets.
	RTO time.Duration
	// ReorderEvery, when > 0, delays every Nth data packet by
	// ReorderDelayPackets packet times so it arrives after its
	// successors. Deterministic out-of-order injection.
	ReorderEvery int
	// ReorderDelayPackets is the extra delay (in packet wire times)
	// applied to reordered packets. Defaults to 2 when ReorderEvery > 0.
	ReorderDelayPackets int
	// DropEvery, when > 0, drops every Nth data packet on first
	// transmission (retransmissions are never dropped, so progress is
	// guaranteed). Deterministic failure injection.
	DropEvery int
	// SpineLinks, when > 0, models the multistage switch's interior:
	// every packet must also traverse one of SpineLinks shared spine
	// links (chosen by source/destination pair), each with Bandwidth
	// capacity. 0 models an ideal crossbar where only the endpoint
	// links contend — adequate for the paper's 2-4 node benchmarks, but
	// a real SP's bisection is finite.
	SpineLinks int
	// FatTreeLevels, when non-empty, replaces the flat spine with a
	// hierarchical fat-tree interior: FatTreeLevels[l] is the number of
	// shared links in the pool connecting level-(l+1) switches to level
	// l+2 (leaves are level 1). A packet climbs to the lowest level at
	// which source and destination share a group of FatTreeArity^l
	// ranks, claiming one up-link and one down-link from each pool it
	// crosses (chosen by a fixed hash of source, destination, level and
	// direction — routes are static, as on the real switch), and is
	// charged one WireLatency per level climbed. Endpoint-link
	// serialization and the adapter's ack/retransmit machinery apply
	// unchanged per packet. Mutually exclusive with SpineLinks.
	FatTreeLevels []int
	// FatTreeArity is the number of ranks per leaf group (and the group
	// fan-out per level). Required ≥ 2 when FatTreeLevels is set.
	FatTreeArity int
}

// DefaultConfig returns the calibration described in DESIGN.md §5: 1 KB
// packets at ≈102 MB/s with 8 µs of wire latency, yielding the paper's
// ≈97 MB/s LAPI asymptote once the 48-byte header is subtracted.
func DefaultConfig() Config {
	return Config{
		PacketBytes: 1024,
		AckBytes:    64,
		Bandwidth:   102e6,
		WireLatency: 8 * time.Microsecond,
		RTO:         500 * time.Microsecond,
	}
}

func (c Config) validate() error {
	if c.PacketBytes <= 0 {
		return fmt.Errorf("switchnet: PacketBytes must be positive, got %d", c.PacketBytes)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("switchnet: Bandwidth must be positive, got %g", c.Bandwidth)
	}
	if c.RTO <= 0 {
		return fmt.Errorf("switchnet: RTO must be positive, got %v", c.RTO)
	}
	if len(c.FatTreeLevels) > 0 {
		if c.SpineLinks > 0 {
			return fmt.Errorf("switchnet: SpineLinks and FatTreeLevels are mutually exclusive interior models")
		}
		if c.FatTreeArity < 2 {
			return fmt.Errorf("switchnet: FatTreeLevels needs FatTreeArity >= 2, got %d", c.FatTreeArity)
		}
		for l, n := range c.FatTreeLevels {
			if n <= 0 {
				return fmt.Errorf("switchnet: FatTreeLevels[%d] must be positive, got %d", l, n)
			}
		}
	}
	return nil
}

// shardLookahead returns the conservative cross-shard synchronization
// window a partitioned switch promises: every cross-shard event takes
// effect at least this much virtual time after its creation. With a
// positive WireLatency that is the wire latency itself. With zero wire
// latency, epochs shrink to micro-epochs bounded by the minimum adapter
// service time — the egress-link occupancy of the smallest possible wire
// unit (one byte) — since even a zero-latency packet cannot arrive before
// its bytes have drained onto the link. A config whose minimum service
// time rounds to zero virtual nanoseconds admits no positive window at
// all: such a config is unshardable, and the error says so rather than
// silently falling back to serial execution.
func (c Config) shardLookahead() (sim.Time, error) {
	if c.WireLatency > 0 {
		return sim.Time(c.WireLatency), nil
	}
	min := sim.Time(c.wireTime(1))
	if min < 1 {
		return 0, fmt.Errorf("switchnet: config is unshardable: WireLatency is zero and the minimum adapter service time (1 byte at %g B/s) rounds to 0 ns, leaving no positive micro-epoch window; set WireLatency > 0 or Bandwidth <= 1e9", c.Bandwidth)
	}
	if c.AckBytes < 1 {
		return 0, fmt.Errorf("switchnet: config is unshardable: WireLatency is zero and AckBytes is %d, so an acknowledgement could cross shards in zero virtual time; micro-epochs need AckBytes >= 1", c.AckBytes)
	}
	return min, nil
}

// wireTime returns the link occupancy for n bytes.
func (c Config) wireTime(n int) time.Duration {
	return time.Duration(float64(n) / c.Bandwidth * float64(time.Second))
}

// Switch is a simulated fabric connecting N adapters.
type Switch struct {
	cfg      Config
	adapters []*Adapter
	// spineFree tracks when each interior spine link is next idle
	// (SpineLinks > 0).
	spineFree []sim.Time
	// treeFree tracks the fat-tree interior: one occupancy clock per
	// link per level pool (FatTreeLevels).
	treeFree [][]sim.Time
	Counters stats.Counters
	// shards holds one slot per sub-engine. Single-engine switches (New)
	// have exactly one; sharded switches (NewSharded) have one per
	// partition, and each slot's outbox accumulates the cross-shard
	// events generated while that shard's engine runs an epoch.
	shards []shardSlot
	// lookahead is the cross-shard synchronization window promised to
	// the epoch coordinator (zero on a single-engine switch whose config
	// admits none — then there is no coordinator to promise it to).
	lookahead sim.Time
	// spineMode is set when the switch is partitioned AND has a shared
	// interior (spine or fat tree): interior occupancies are then
	// speculatively recorded per shard and arbitrated at the epoch
	// barrier (ResolveSpine) instead of claimed inline.
	spineMode bool
	// instReqs and resolverArmed implement the single-engine interior:
	// claims made at one virtual instant are deferred to a
	// due-FIFO resolver at the same instant, so same-instant ties are
	// arbitrated by source rank — the same order the sharded barrier
	// uses — instead of by incidental event-creation order.
	instReqs      []spineReq
	resolverArmed bool
	// reqScratch is the barrier arbitration's reusable merge buffer.
	reqScratch []spineReq
}

// shardSlot is one partition of a sharded switch.
type shardSlot struct {
	eng    *sim.Engine
	outbox []parallel.Export
	// spineReqs accumulates the shard's would-be interior occupancies
	// (spineMode): transmits record their claims here in execution
	// order, and the barrier arbitrates them against the shared
	// occupancy clocks in global (timestamp, shard, order) order.
	spineReqs []spineReq
}

// spineReq is one speculative interior-occupancy claim: a packet that
// left its egress link at ready and still needs its spine (or fat-tree)
// slots assigned before its arrival can be scheduled.
type spineReq struct {
	at    sim.Time // transmit execution time: the arbitration key
	src   int
	dst   *Adapter
	ready sim.Time // egress drain: earliest interior entry
	wire  sim.Time // link occupancy of this packet
	extra sim.Time // deterministic reorder delay, applied after the interior
	fn    func()   // the arrival, scheduled on dst's engine once resolved
}

// New builds a switch with n endpoints on eng.
func New(eng *sim.Engine, n int, cfg Config) (*Switch, error) {
	return NewSharded([]*sim.Engine{eng}, n, cfg)
}

// NewSharded builds a switch whose n endpoints are partitioned into
// len(engines) shards of contiguous ranks (rank r belongs to shard
// r*shards/n), each owning its private sub-engine. Every adapter's events
// run on its shard's engine; packet and ack arrivals that cross a shard
// boundary are exported through per-shard outboxes for an epoch
// coordinator (parallel.RunEpochs) to deliver. The coordinator's
// lookahead window is WireLatency when positive; a zero-latency config
// falls back to micro-epochs bounded by the minimum adapter service time
// (Config.shardLookahead). Interior contention (SpineLinks or
// FatTreeLevels) is shared by every source adapter, so under sharding it
// is not claimed inline: each shard records its would-be occupancies
// speculatively and the epoch barrier arbitrates them in the same stable
// (timestamp, shard, sequence) order the serial engine's execution
// produces (ResolveSpine), re-injecting the delayed arrivals — which
// keeps serial and sharded virtual times byte-identical.
//
// A config that admits no positive lookahead window at all is
// unshardable; NewSharded returns a descriptive error rather than
// silently running serial.
func NewSharded(engines []*sim.Engine, n int, cfg Config) (*Switch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards := len(engines)
	if shards < 1 {
		return nil, fmt.Errorf("switchnet: need at least one engine")
	}
	if shards > n {
		return nil, fmt.Errorf("switchnet: %d shards for %d endpoints", shards, n)
	}
	if cfg.ReorderEvery > 0 && cfg.ReorderDelayPackets == 0 {
		cfg.ReorderDelayPackets = 2
	}
	s := &Switch{cfg: cfg, shards: make([]shardSlot, shards)}
	lookahead, laErr := cfg.shardLookahead()
	if shards > 1 {
		if laErr != nil {
			return nil, laErr
		}
		s.lookahead = lookahead
		s.spineMode = cfg.SpineLinks > 0 || len(cfg.FatTreeLevels) > 0
	} else if laErr == nil {
		s.lookahead = lookahead // single-engine: advisory only
	}
	for i, eng := range engines {
		s.shards[i].eng = eng
	}
	if cfg.SpineLinks > 0 {
		s.spineFree = make([]sim.Time, cfg.SpineLinks)
	}
	if len(cfg.FatTreeLevels) > 0 {
		s.treeFree = make([][]sim.Time, len(cfg.FatTreeLevels))
		for l, links := range cfg.FatTreeLevels {
			s.treeFree[l] = make([]sim.Time, links)
		}
	}
	s.adapters = make([]*Adapter, n)
	for i := range s.adapters {
		shard := i * shards / n
		s.adapters[i] = &Adapter{
			sw:      s,
			rank:    i,
			eng:     engines[shard],
			shard:   shard,
			unacked: make(map[uint64]*txPacket),
			// seen maps are allocated lazily on first delivery from each
			// source: at 1k+ ranks an eager n×n map grid dominates
			// construction time and memory for meshes whose traffic
			// touches few pairs.
			seen:   make([]map[uint64]bool, n),
			posted: make(map[directKey]*dregion),
		}
	}
	return s, nil
}

// Shards returns the number of sub-engines driving this switch (one for a
// single-engine switch).
func (s *Switch) Shards() int { return len(s.shards) }

// ShardOf returns the shard index owning rank.
func (s *Switch) ShardOf(rank int) int {
	fabric.CheckRank(rank, len(s.adapters))
	return s.adapters[rank].shard
}

// Lookahead returns the conservative synchronization window for epoch
// execution: every cross-shard event takes effect at least this much
// virtual time after its creation — WireLatency when positive, otherwise
// the micro-epoch window (the minimum adapter service time; see
// Config.shardLookahead).
func (s *Switch) Lookahead() sim.Time { return s.lookahead }

// interiorOccupy claims the shared interior links a packet crosses from
// src to dst, given that its egress drain completes at ready and it
// occupies each link for wire. It returns the virtual time the packet
// exits the interior and the number of switch traversals (WireLatency
// charges). A crossbar has no shared interior (exit = ready, one
// traversal); a flat spine claims one of SpineLinks pair-hashed links
// (one traversal, as before the fat tree existed); a fat tree claims one
// up-link per pool from the leaf to the lowest common level and one
// down-link per pool back, charging one traversal per level climbed.
// Routes are a fixed hash of (src, dst, level, direction) — static, as
// on the real switch — so occupancy is deterministic in claim order.
func (s *Switch) interiorOccupy(src, dst int, ready, wire sim.Time) (sim.Time, int) {
	if s.spineFree != nil {
		// Deterministic multiplicative hash of the (src,dst) pair:
		// routes are fixed per pair, as on the real switch.
		h := uint64(src)*0x9E3779B97F4A7C15 ^ uint64(dst)*0xC2B2AE3D27D4EB4F
		sl := &s.spineFree[h%uint64(len(s.spineFree))]
		start := ready
		if *sl > start {
			start = *sl
		}
		*sl = start + wire
		return *sl, 1
	}
	if s.treeFree != nil {
		arity := s.cfg.FatTreeArity
		// lstar is the lowest level at which src and dst share a group
		// (leaves are level 1), capped at the root pool: packets whose
		// paths differ even at the top still route through the top pool.
		lstar := 1
		sg, dg := src/arity, dst/arity
		for sg != dg && lstar <= len(s.treeFree) {
			lstar++
			sg, dg = sg/arity, dg/arity
		}
		end := ready
		claim := func(level, dir int) {
			pool := s.treeFree[level-1]
			h := uint64(src)*0x9E3779B97F4A7C15 ^ uint64(dst)*0xC2B2AE3D27D4EB4F ^
				uint64(level)*0xD6E8FEB86659FD93 ^ uint64(dir)*0xFF51AFD7ED558CCD
			sl := &pool[h%uint64(len(pool))]
			if *sl > end {
				end = *sl
			}
			end += wire
			*sl = end
		}
		for l := 1; l < lstar; l++ {
			claim(l, 0) // up
		}
		for l := lstar - 1; l >= 1; l-- {
			claim(l, 1) // down
		}
		return end, lstar
	}
	return ready, 1
}

// resolveReqs arbitrates a batch of speculative interior claims: stable
// sort by (timestamp, source rank) — each source's claims are already in
// its own execution order, so the full key is (timestamp, source,
// per-source sequence) — then resolve against the authoritative
// occupancy clocks and schedule each arrival on its destination engine.
// Serial (instant-deferred) and sharded (barrier-deferred) interiors
// both funnel through here, which is what makes their virtual times
// identical: the arbitration key never mentions shards or engine event
// order.
func (s *Switch) resolveReqs(reqs []spineReq) {
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].at != reqs[j].at {
			return reqs[i].at < reqs[j].at
		}
		return reqs[i].src < reqs[j].src
	})
	lat := sim.Time(s.cfg.WireLatency)
	for i := range reqs {
		r := &reqs[i]
		end, hops := s.interiorOccupy(r.src, r.dst.rank, r.ready, r.wire)
		r.dst.eng.ScheduleAt(end+sim.Time(hops)*lat+r.extra, r.fn)
	}
	s.Counters.Add(stats.SpineRequests, int64(len(reqs)))
	s.Counters.Max(stats.SpineReqHighWater, int64(len(reqs)))
}

// resolveInstant drains the single-engine interior's same-instant claim
// batch (armed by transmit via a due-FIFO event at the claim's own
// virtual instant).
func (s *Switch) resolveInstant() {
	s.resolverArmed = false
	reqs := s.instReqs
	s.instReqs = s.instReqs[:0]
	s.resolveReqs(reqs)
	for i := range reqs {
		reqs[i] = spineReq{} // drop closure references
	}
}

// ResolveSpine is the epoch-barrier arbitration hook
// (parallel.Hooks.Barrier) for a sharded switch with a shared interior.
// During the epoch each shard recorded its would-be interior occupancies
// speculatively (transmit appends to shardSlot.spineReqs instead of
// touching the shared clocks); here, with every engine parked, the
// requests of all shards are merged and resolved in the global
// (timestamp, source, per-source sequence) order (resolveReqs),
// scheduling each delayed arrival on its destination engine. On a switch
// without spineMode it is a cheap no-op, so callers may pass it
// unconditionally.
func (s *Switch) ResolveSpine() {
	reqs := s.reqScratch[:0]
	for i := range s.shards {
		reqs = append(reqs, s.shards[i].spineReqs...)
		s.shards[i].spineReqs = s.shards[i].spineReqs[:0]
	}
	if len(reqs) == 0 {
		s.reqScratch = reqs
		return
	}
	s.resolveReqs(reqs)
	for i := range reqs {
		reqs[i] = spineReq{} // drop closure references
	}
	s.reqScratch = reqs[:0]
}

// TakeOutbox drains and returns shard's accumulated cross-shard events in
// creation order — the parallel.RunEpochs collection hook. It must only be
// called at an epoch barrier (no shard engine running).
func (s *Switch) TakeOutbox(shard int) []parallel.Export {
	sl := &s.shards[shard]
	out := sl.outbox
	sl.outbox = nil
	return out
}

// Config returns the switch configuration.
func (s *Switch) Config() Config { return s.cfg }

// Endpoint returns the adapter for rank, which implements fabric.Transport.
func (s *Switch) Endpoint(rank int) *Adapter {
	fabric.CheckRank(rank, len(s.adapters))
	return s.adapters[rank]
}

// directHdrBytes is the wire header charged per direct-lane fragment
// (8-byte token + 4-byte offset). Much smaller than the 48-byte LAPI
// packet header the eager path carries — the per-byte advantage that,
// against the fixed RTS/CTS round trip, sets the rendezvous crossover.
const directHdrBytes = 12

// txPacket is a sender-side record of an in-flight packet.
type txPacket struct {
	dst     int
	seq     uint64
	data    []byte
	acked   bool
	retries int
	// Direct-lane fragments: data aliases the caller's payload slice
	// (zero-copy), off is its placement offset in the posted region, and
	// msg links the fragments of one SendDirect for the all-acked
	// completion callback.
	direct bool
	token  uint64
	off    uint32
	msg    *directMsg
}

// directMsg tracks one SendDirect until every fragment is acknowledged —
// only then may the caller touch the payload again (a retransmission
// re-reads the live slice until its ack lands).
type directMsg struct {
	remaining int
	sent      func()
}

// directKey identifies a pre-posted landing region (see RecvInto).
type directKey struct {
	src   int
	token uint64
}

// dregion is one pre-posted landing buffer on the receive side.
type dregion struct {
	buf   []byte
	recvd int
}

// Adapter is one node's attachment to the switch. It provides reliable,
// possibly-reordered packet delivery and implements fabric.Transport.
type Adapter struct {
	sw      *Switch
	rank    int
	eng     *sim.Engine // the sub-engine this adapter's events run on
	shard   int
	deliver func(src int, data []byte)

	// linkFree is the virtual time at which the outgoing link becomes
	// idle; packets queue behind it (link serialization).
	linkFree sim.Time
	// dataSent counts first transmissions, for the deterministic
	// reorder/drop rules.
	dataSent uint64

	unacked map[uint64]*txPacket // keyed by seq (seqs are globally unique per adapter)
	seqGen  uint64               // global sequence generator for this adapter
	seen    []map[uint64]bool    // per-source delivered seqs (dedup of retransmits)

	directDone func(src int, token uint64)
	posted     map[directKey]*dregion
}

var _ fabric.Transport = (*Adapter)(nil)

// Self implements fabric.Transport.
func (a *Adapter) Self() int { return a.rank }

// N implements fabric.Transport.
func (a *Adapter) N() int { return len(a.sw.adapters) }

// MaxPacket implements fabric.Transport.
func (a *Adapter) MaxPacket() int { return a.sw.cfg.PacketBytes }

// SetDeliver implements fabric.Transport.
func (a *Adapter) SetDeliver(fn func(src int, data []byte)) { a.deliver = fn } //lapivet:ignore racefree registration precedes wire-up: no Send can deliver before the callback is installed

// Alloc implements fabric.Transport. The switch does not pool: sent packets
// are retained by the retransmission machinery (and delivered slices alias
// them), so buffers cannot be recycled on release.
func (a *Adapter) Alloc(n int) []byte { return make([]byte, n) }

// Release implements fabric.Transport as a no-op; see Alloc.
func (a *Adapter) Release(pkt []byte) {}

// Contract implements fabric.Transport: nothing is pooled, but the
// zero-copy direct lane is live.
func (a *Adapter) Contract() fabric.Contract { return fabric.Contract{Direct: true} }

// SetDirectDone implements fabric.Transport.
func (a *Adapter) SetDirectDone(fn func(src int, token uint64)) { a.directDone = fn } //lapivet:ignore racefree registration precedes wire-up: no direct send can complete before the callback is installed

// RecvInto implements fabric.Transport: posts buf as the landing region
// for direct fragments from (src, token). Completion (the SetDirectDone
// upcall) is modeled as adapter DMA — it costs no CPU time on the
// receiving task.
func (a *Adapter) RecvInto(src int, token uint64, buf []byte) {
	fabric.CheckRank(src, len(a.sw.adapters))
	a.posted[directKey{src: src, token: token}] = &dregion{buf: buf}
}

// SendDirect implements fabric.Transport: the payload is fragmented into
// PacketBytes-sized wire packets whose data slices ALIAS the caller's
// buffer (no copy), each carrying a 12-byte (token, offset) header instead
// of a protocol packet header. Fragments ride the normal seq/ack/RTO
// machinery, so drop and reorder injection exercise this path too; because
// a retransmission re-reads the live payload slice, sent fires only once
// every fragment has been ACKNOWLEDGED (not merely drained) — the earliest
// point the buffer can safely change.
func (a *Adapter) SendDirect(ctx exec.Context, dst int, token uint64, payload []byte, sent func()) {
	fabric.CheckRank(dst, len(a.sw.adapters))
	chunk := a.sw.cfg.PacketBytes - directHdrBytes
	if chunk <= 0 {
		panic(fmt.Sprintf("switchnet: PacketBytes=%d cannot carry a direct fragment header", a.sw.cfg.PacketBytes))
	}
	if dst == a.rank {
		// Loopback: one copy into the posted region at the next scheduling
		// point (no wire to elide it on).
		a.sw.Counters.Add(stats.PacketsSent, 1)
		a.sw.Counters.Add(stats.BytesSent, int64(len(payload)))
		a.eng.Schedule(0, func() {
			k := directKey{src: a.rank, token: token}
			r := a.posted[k]
			if r == nil {
				panic(fmt.Sprintf("switchnet: direct loopback at rank %d with no posted region (token %d)", a.rank, token))
			}
			copy(r.buf, payload)
			delete(a.posted, k)
			if sent != nil {
				sent()
			}
			if a.directDone != nil {
				a.directDone(a.rank, token)
			}
		})
		return
	}
	nfrag := (len(payload) + chunk - 1) / chunk
	if nfrag == 0 {
		nfrag = 1
	}
	msg := &directMsg{remaining: nfrag, sent: sent}
	for off := 0; ; off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		a.seqGen++
		p := &txPacket{
			dst: dst, seq: a.seqGen, data: payload[off:end],
			direct: true, token: token, off: uint32(off), msg: msg,
		}
		a.unacked[p.seq] = p
		a.transmit(p, false, nil)
		if end >= len(payload) {
			break
		}
	}
}

// Close implements fabric.Transport.
func (a *Adapter) Close() error { return nil }

// Send implements fabric.Transport: queue one packet for dst. The sent
// callback, if non-nil, fires when the packet has fully left the adapter
// (the origin buffer drain point used for LAPI's origin counter on
// zero-copy sends). Send never blocks.
func (a *Adapter) Send(ctx exec.Context, dst int, data []byte, sent func()) {
	fabric.CheckRank(dst, len(a.sw.adapters))
	if len(data) > a.sw.cfg.PacketBytes {
		panic(fmt.Sprintf("switchnet: packet of %d bytes exceeds PacketBytes=%d", len(data), a.sw.cfg.PacketBytes))
	}
	if dst == a.rank {
		// Loopback: no wire, deliver at the next scheduling point.
		a.sw.Counters.Add(stats.PacketsSent, 1)
		a.sw.Counters.Add(stats.BytesSent, int64(len(data)))
		a.eng.Schedule(0, func() {
			if sent != nil {
				sent()
			}
			a.sw.adapters[dst].receiveLoopback(a.rank, data)
		})
		return
	}
	a.seqGen++
	p := &txPacket{dst: dst, seq: a.seqGen, data: data}
	a.unacked[p.seq] = p
	a.transmit(p, false, sent)
}

// post schedules fn at absolute virtual time at on dst's engine. When dst
// shares a's engine the schedule is direct (and identical, event for
// event, to the pre-sharding code: ScheduleAt(at) is Schedule(at-now));
// otherwise the event goes to a's shard outbox for the epoch coordinator
// to import at the next barrier. Cross-shard posts are only ever created
// at least WireLatency ahead of the sender's clock — the lookahead
// guarantee the coordinator relies on.
func (a *Adapter) post(dst *Adapter, at sim.Time, fn func()) {
	if dst.eng == a.eng {
		a.eng.ScheduleAt(at, fn)
		return
	}
	sl := &a.sw.shards[a.shard]
	sl.outbox = append(sl.outbox, parallel.Export{At: at, Shard: dst.shard, Fn: fn})
}

// transmit puts p on the wire (first transmission or retransmission).
func (a *Adapter) transmit(p *txPacket, isRetry bool, sent func()) {
	cfg := a.sw.cfg
	eng := a.eng

	wireBytes := len(p.data)
	if p.direct {
		wireBytes += directHdrBytes
	}
	wire := cfg.wireTime(wireBytes)
	depart := eng.Now()
	if a.linkFree > depart {
		depart = a.linkFree
	}
	a.linkFree = depart + sim.Time(wire)

	a.sw.Counters.Add(stats.PacketsSent, 1)
	a.sw.Counters.Add(stats.BytesSent, int64(wireBytes))

	drop := false
	extra := time.Duration(0)
	if !isRetry {
		a.dataSent++
		if cfg.DropEvery > 0 && a.dataSent%uint64(cfg.DropEvery) == 0 {
			drop = true
		}
		if !drop && cfg.ReorderEvery > 0 && a.dataSent%uint64(cfg.ReorderEvery) == 0 {
			extra = time.Duration(cfg.ReorderDelayPackets) * cfg.wireTime(cfg.PacketBytes)
		}
	} else {
		a.sw.Counters.Add(stats.Retransmits, 1)
	}

	if sent != nil {
		eng.Schedule(time.Duration(a.linkFree-eng.Now()), sent)
	}

	if drop {
		a.sw.Counters.Add(stats.PacketsDropped, 1)
	} else {
		// Egress-link drain, then the shared interior (if any), then
		// propagation.
		ready := a.linkFree
		src, seq, data := a.rank, p.seq, p.data
		dstAd := a.sw.adapters[p.dst]
		var fn func()
		if p.direct {
			token, off := p.token, p.off
			fn = func() { dstAd.receiveDirect(src, seq, token, off, data) }
		} else {
			fn = func() { dstAd.receive(src, seq, data) }
		}
		switch {
		case a.sw.spineMode:
			// Partitioned switch, shared interior: don't touch the
			// occupancy clocks from inside an epoch. Record the claim;
			// the barrier arbitrates it (ResolveSpine) and schedules fn.
			sl := &a.sw.shards[a.shard]
			sl.spineReqs = append(sl.spineReqs, spineReq{
				at: eng.Now(), src: src, dst: dstAd,
				ready: ready, wire: sim.Time(wire), extra: sim.Time(extra), fn: fn,
			})
		case a.sw.spineFree != nil || a.sw.treeFree != nil:
			// Single-engine interior: defer the claim to a resolver at
			// this same virtual instant (due-FIFO), so same-instant ties
			// are arbitrated by source rank — matching the sharded
			// barrier — not by event-creation order.
			a.sw.instReqs = append(a.sw.instReqs, spineReq{
				at: eng.Now(), src: src, dst: dstAd,
				ready: ready, wire: sim.Time(wire), extra: sim.Time(extra), fn: fn,
			})
			if !a.sw.resolverArmed {
				a.sw.resolverArmed = true
				eng.Schedule(0, a.sw.resolveInstant)
			}
		default:
			arrive := ready + sim.Time(cfg.WireLatency) + sim.Time(extra)
			a.post(dstAd, arrive, fn)
		}
	}

	// Arm the retransmission timer.
	seq := p.seq
	eng.Schedule(time.Duration(a.linkFree-eng.Now())+cfg.RTO, func() {
		q, ok := a.unacked[seq]
		if !ok || q.acked {
			return
		}
		q.retries++
		a.transmit(q, true, nil)
	})
}

// receive handles an arriving data packet at the destination adapter.
func (a *Adapter) receive(src int, seq uint64, data []byte) {
	// Always (re-)acknowledge: the earlier ack may have raced a
	// retransmission.
	a.sendAck(src, seq)
	if a.seen[src][seq] {
		return // duplicate from retransmission
	}
	if a.seen[src] == nil {
		a.seen[src] = make(map[uint64]bool)
	}
	a.seen[src][seq] = true
	a.sw.Counters.Add(stats.PacketsRecv, 1)
	a.sw.Counters.Add(stats.BytesRecv, int64(len(data)))
	if a.deliver == nil {
		panic(fmt.Sprintf("switchnet: packet for rank %d with no deliver callback", a.rank))
	}
	a.deliver(src, data)
}

// receiveDirect lands one direct-lane fragment in its pre-posted region —
// modeled as adapter DMA: the copy below is the simulation updating the
// bytes a real adapter would have placed without CPU involvement, so no
// virtual time is charged here beyond the wire time transmit already spent.
func (a *Adapter) receiveDirect(src int, seq uint64, token uint64, off uint32, data []byte) {
	a.sendAck(src, seq)
	if a.seen[src][seq] {
		return // duplicate from retransmission
	}
	if a.seen[src] == nil {
		a.seen[src] = make(map[uint64]bool)
	}
	a.seen[src][seq] = true
	a.sw.Counters.Add(stats.PacketsRecv, 1)
	a.sw.Counters.Add(stats.BytesRecv, int64(len(data)+directHdrBytes))
	k := directKey{src: src, token: token}
	r := a.posted[k]
	if r == nil {
		panic(fmt.Sprintf("switchnet: direct fragment at rank %d with no posted region (src %d token %d)", a.rank, src, token))
	}
	if int(off)+len(data) > len(r.buf) {
		panic(fmt.Sprintf("switchnet: direct fragment at rank %d overflows region (src %d token %d off %d len %d region %d)", a.rank, src, token, off, len(data), len(r.buf)))
	}
	copy(r.buf[off:], data)
	r.recvd += len(data)
	if r.recvd >= len(r.buf) {
		delete(a.posted, k)
		if a.directDone == nil {
			panic(fmt.Sprintf("switchnet: direct completion at rank %d with no done callback", a.rank))
		}
		a.directDone(src, token)
	}
}

// receiveLoopback bypasses sequencing for self-sends.
func (a *Adapter) receiveLoopback(src int, data []byte) {
	a.sw.Counters.Add(stats.PacketsRecv, 1)
	a.sw.Counters.Add(stats.BytesRecv, int64(len(data)))
	if a.deliver == nil {
		panic(fmt.Sprintf("switchnet: packet for rank %d with no deliver callback", a.rank))
	}
	a.deliver(src, data)
}

// sendAck returns a small acknowledgement to src. Acks consume reverse-link
// bandwidth but are never dropped or reordered (the adapter hardware
// protocol), which keeps retransmission logic simple and deterministic.
func (a *Adapter) sendAck(src int, seq uint64) {
	cfg := a.sw.cfg
	eng := a.eng
	wire := cfg.wireTime(cfg.AckBytes)
	depart := eng.Now()
	if a.linkFree > depart {
		depart = a.linkFree
	}
	a.linkFree = depart + sim.Time(wire)
	a.sw.Counters.Add(stats.AcksSent, 1)
	arrive := a.linkFree + sim.Time(cfg.WireLatency)
	origin := a.sw.adapters[src]
	a.post(origin, arrive, func() {
		if p, ok := origin.unacked[seq]; ok {
			p.acked = true
			delete(origin.unacked, seq)
			if m := p.msg; m != nil {
				// Direct-lane fragment: the payload slice is pinned until
				// the whole message is acked, then the borrow ends.
				m.remaining--
				if m.remaining == 0 && m.sent != nil {
					m.sent()
				}
			}
		}
	})
}

// PendingAcks reports the number of unacknowledged packets (test hook).
func (a *Adapter) PendingAcks() int { return len(a.unacked) }
