// Package switchnet models the IBM SP high-performance switch as a
// discrete-event simulation: a full crossbar of nodes whose adapters inject
// fixed-size packets onto links with finite bandwidth and latency.
//
// The model captures exactly the properties the paper's protocol arguments
// rest on:
//
//   - fixed packet size (1 KB on the SP switch) — protocol headers eat into
//     per-packet payload, which is why LAPI's 48-byte header costs it peak
//     bandwidth against MPI's 16-byte header;
//   - link serialization — a node's outgoing link fits one packet at a
//     time, so asymptotic bandwidth = payload / packet wire time;
//   - out-of-order delivery — the switch may reorder packets between the
//     same pair of nodes (LAPI's reassembly machinery exists because of
//     this);
//   - unreliability — packets can be dropped; the adapter layer provides
//     acknowledgements and retransmission, which is why LAPI copies small
//     messages into internal buffers before returning to the user.
//
// CPU costs (send/receive overheads, interrupts, memory copies) are NOT
// modelled here; they belong to the protocol layers, which charge them to
// the calling context. The switch models only wire time, propagation and
// adapter queueing.
package switchnet

import (
	"fmt"
	"time"

	"golapi/internal/exec"
	"golapi/internal/fabric"
	"golapi/internal/parallel"
	"golapi/internal/sim"
	"golapi/internal/stats"
)

// Config describes the fabric. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// PacketBytes is the maximum wire packet size, including protocol
	// headers (SP switch: 1024).
	PacketBytes int
	// AckBytes is the wire size of an adapter-level acknowledgement.
	AckBytes int
	// Bandwidth is the link rate in bytes per second.
	Bandwidth float64
	// WireLatency is propagation plus switch traversal time per packet.
	WireLatency time.Duration
	// RTO is the retransmission timeout for unacknowledged packets.
	RTO time.Duration
	// ReorderEvery, when > 0, delays every Nth data packet by
	// ReorderDelayPackets packet times so it arrives after its
	// successors. Deterministic out-of-order injection.
	ReorderEvery int
	// ReorderDelayPackets is the extra delay (in packet wire times)
	// applied to reordered packets. Defaults to 2 when ReorderEvery > 0.
	ReorderDelayPackets int
	// DropEvery, when > 0, drops every Nth data packet on first
	// transmission (retransmissions are never dropped, so progress is
	// guaranteed). Deterministic failure injection.
	DropEvery int
	// SpineLinks, when > 0, models the multistage switch's interior:
	// every packet must also traverse one of SpineLinks shared spine
	// links (chosen by source/destination pair), each with Bandwidth
	// capacity. 0 models an ideal crossbar where only the endpoint
	// links contend — adequate for the paper's 2-4 node benchmarks, but
	// a real SP's bisection is finite.
	SpineLinks int
}

// DefaultConfig returns the calibration described in DESIGN.md §5: 1 KB
// packets at ≈102 MB/s with 8 µs of wire latency, yielding the paper's
// ≈97 MB/s LAPI asymptote once the 48-byte header is subtracted.
func DefaultConfig() Config {
	return Config{
		PacketBytes: 1024,
		AckBytes:    64,
		Bandwidth:   102e6,
		WireLatency: 8 * time.Microsecond,
		RTO:         500 * time.Microsecond,
	}
}

func (c Config) validate() error {
	if c.PacketBytes <= 0 {
		return fmt.Errorf("switchnet: PacketBytes must be positive, got %d", c.PacketBytes)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("switchnet: Bandwidth must be positive, got %g", c.Bandwidth)
	}
	if c.RTO <= 0 {
		return fmt.Errorf("switchnet: RTO must be positive, got %v", c.RTO)
	}
	return nil
}

// wireTime returns the link occupancy for n bytes.
func (c Config) wireTime(n int) time.Duration {
	return time.Duration(float64(n) / c.Bandwidth * float64(time.Second))
}

// Switch is a simulated fabric connecting N adapters.
type Switch struct {
	cfg      Config
	adapters []*Adapter
	// spineFree tracks when each interior spine link is next idle
	// (SpineLinks > 0).
	spineFree []sim.Time
	Counters  stats.Counters
	// shards holds one slot per sub-engine. Single-engine switches (New)
	// have exactly one; sharded switches (NewSharded) have one per
	// partition, and each slot's outbox accumulates the cross-shard
	// events generated while that shard's engine runs an epoch.
	shards []shardSlot
}

// shardSlot is one partition of a sharded switch.
type shardSlot struct {
	eng    *sim.Engine
	outbox []parallel.Export
}

// New builds a switch with n endpoints on eng.
func New(eng *sim.Engine, n int, cfg Config) (*Switch, error) {
	return NewSharded([]*sim.Engine{eng}, n, cfg)
}

// NewSharded builds a switch whose n endpoints are partitioned into
// len(engines) shards of contiguous ranks (rank r belongs to shard
// r*shards/n), each owning its private sub-engine. Every adapter's events
// run on its shard's engine; packet and ack arrivals that cross a shard
// boundary are exported through per-shard outboxes for an epoch
// coordinator (parallel.RunEpochs) to deliver, using WireLatency as the
// conservative lookahead window.
//
// Sharded operation (more than one engine) requires WireLatency > 0 —
// zero lookahead would force zero-width epochs — and SpineLinks == 0: the
// spine occupancy array is mutable state shared by all source adapters,
// so a finite-bisection fabric cannot be partitioned by rank.
func NewSharded(engines []*sim.Engine, n int, cfg Config) (*Switch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards := len(engines)
	if shards < 1 {
		return nil, fmt.Errorf("switchnet: need at least one engine")
	}
	if shards > n {
		return nil, fmt.Errorf("switchnet: %d shards for %d endpoints", shards, n)
	}
	if shards > 1 {
		if cfg.WireLatency <= 0 {
			return nil, fmt.Errorf("switchnet: sharded operation requires positive WireLatency (the lookahead window), got %v", cfg.WireLatency)
		}
		if cfg.SpineLinks > 0 {
			return nil, fmt.Errorf("switchnet: sharded operation requires SpineLinks == 0 (spine occupancy is shared across all shards)")
		}
	}
	if cfg.ReorderEvery > 0 && cfg.ReorderDelayPackets == 0 {
		cfg.ReorderDelayPackets = 2
	}
	s := &Switch{cfg: cfg, shards: make([]shardSlot, shards)}
	for i, eng := range engines {
		s.shards[i].eng = eng
	}
	if cfg.SpineLinks > 0 {
		s.spineFree = make([]sim.Time, cfg.SpineLinks)
	}
	s.adapters = make([]*Adapter, n)
	for i := range s.adapters {
		shard := i * shards / n
		s.adapters[i] = &Adapter{
			sw:      s,
			rank:    i,
			eng:     engines[shard],
			shard:   shard,
			unacked: make(map[uint64]*txPacket),
			seen:    make([]map[uint64]bool, n),
			posted:  make(map[directKey]*dregion),
		}
		for j := range s.adapters[i].seen {
			s.adapters[i].seen[j] = make(map[uint64]bool)
		}
	}
	return s, nil
}

// Shards returns the number of sub-engines driving this switch (one for a
// single-engine switch).
func (s *Switch) Shards() int { return len(s.shards) }

// ShardOf returns the shard index owning rank.
func (s *Switch) ShardOf(rank int) int {
	fabric.CheckRank(rank, len(s.adapters))
	return s.adapters[rank].shard
}

// Lookahead returns the conservative synchronization window for epoch
// execution: every cross-shard event takes effect at least this much
// virtual time after its creation (the wire latency).
func (s *Switch) Lookahead() sim.Time { return sim.Time(s.cfg.WireLatency) }

// TakeOutbox drains and returns shard's accumulated cross-shard events in
// creation order — the parallel.RunEpochs collection hook. It must only be
// called at an epoch barrier (no shard engine running).
func (s *Switch) TakeOutbox(shard int) []parallel.Export {
	sl := &s.shards[shard]
	out := sl.outbox
	sl.outbox = nil
	return out
}

// Config returns the switch configuration.
func (s *Switch) Config() Config { return s.cfg }

// Endpoint returns the adapter for rank, which implements fabric.Transport.
func (s *Switch) Endpoint(rank int) *Adapter {
	fabric.CheckRank(rank, len(s.adapters))
	return s.adapters[rank]
}

// directHdrBytes is the wire header charged per direct-lane fragment
// (8-byte token + 4-byte offset). Much smaller than the 48-byte LAPI
// packet header the eager path carries — the per-byte advantage that,
// against the fixed RTS/CTS round trip, sets the rendezvous crossover.
const directHdrBytes = 12

// txPacket is a sender-side record of an in-flight packet.
type txPacket struct {
	dst     int
	seq     uint64
	data    []byte
	acked   bool
	retries int
	// Direct-lane fragments: data aliases the caller's payload slice
	// (zero-copy), off is its placement offset in the posted region, and
	// msg links the fragments of one SendDirect for the all-acked
	// completion callback.
	direct bool
	token  uint64
	off    uint32
	msg    *directMsg
}

// directMsg tracks one SendDirect until every fragment is acknowledged —
// only then may the caller touch the payload again (a retransmission
// re-reads the live slice until its ack lands).
type directMsg struct {
	remaining int
	sent      func()
}

// directKey identifies a pre-posted landing region (see RecvInto).
type directKey struct {
	src   int
	token uint64
}

// dregion is one pre-posted landing buffer on the receive side.
type dregion struct {
	buf   []byte
	recvd int
}

// Adapter is one node's attachment to the switch. It provides reliable,
// possibly-reordered packet delivery and implements fabric.Transport.
type Adapter struct {
	sw      *Switch
	rank    int
	eng     *sim.Engine // the sub-engine this adapter's events run on
	shard   int
	deliver func(src int, data []byte)

	// linkFree is the virtual time at which the outgoing link becomes
	// idle; packets queue behind it (link serialization).
	linkFree sim.Time
	// dataSent counts first transmissions, for the deterministic
	// reorder/drop rules.
	dataSent uint64

	unacked map[uint64]*txPacket // keyed by seq (seqs are globally unique per adapter)
	seqGen  uint64               // global sequence generator for this adapter
	seen    []map[uint64]bool    // per-source delivered seqs (dedup of retransmits)

	directDone func(src int, token uint64)
	posted     map[directKey]*dregion
}

var _ fabric.Transport = (*Adapter)(nil)

// Self implements fabric.Transport.
func (a *Adapter) Self() int { return a.rank }

// N implements fabric.Transport.
func (a *Adapter) N() int { return len(a.sw.adapters) }

// MaxPacket implements fabric.Transport.
func (a *Adapter) MaxPacket() int { return a.sw.cfg.PacketBytes }

// SetDeliver implements fabric.Transport.
func (a *Adapter) SetDeliver(fn func(src int, data []byte)) { a.deliver = fn }

// Alloc implements fabric.Transport. The switch does not pool: sent packets
// are retained by the retransmission machinery (and delivered slices alias
// them), so buffers cannot be recycled on release.
func (a *Adapter) Alloc(n int) []byte { return make([]byte, n) }

// Release implements fabric.Transport as a no-op; see Alloc.
func (a *Adapter) Release(pkt []byte) {}

// Contract implements fabric.Transport: nothing is pooled, but the
// zero-copy direct lane is live.
func (a *Adapter) Contract() fabric.Contract { return fabric.Contract{Direct: true} }

// SetDirectDone implements fabric.Transport.
func (a *Adapter) SetDirectDone(fn func(src int, token uint64)) { a.directDone = fn }

// RecvInto implements fabric.Transport: posts buf as the landing region
// for direct fragments from (src, token). Completion (the SetDirectDone
// upcall) is modeled as adapter DMA — it costs no CPU time on the
// receiving task.
func (a *Adapter) RecvInto(src int, token uint64, buf []byte) {
	fabric.CheckRank(src, len(a.sw.adapters))
	a.posted[directKey{src: src, token: token}] = &dregion{buf: buf}
}

// SendDirect implements fabric.Transport: the payload is fragmented into
// PacketBytes-sized wire packets whose data slices ALIAS the caller's
// buffer (no copy), each carrying a 12-byte (token, offset) header instead
// of a protocol packet header. Fragments ride the normal seq/ack/RTO
// machinery, so drop and reorder injection exercise this path too; because
// a retransmission re-reads the live payload slice, sent fires only once
// every fragment has been ACKNOWLEDGED (not merely drained) — the earliest
// point the buffer can safely change.
func (a *Adapter) SendDirect(ctx exec.Context, dst int, token uint64, payload []byte, sent func()) {
	fabric.CheckRank(dst, len(a.sw.adapters))
	chunk := a.sw.cfg.PacketBytes - directHdrBytes
	if chunk <= 0 {
		panic(fmt.Sprintf("switchnet: PacketBytes=%d cannot carry a direct fragment header", a.sw.cfg.PacketBytes))
	}
	if dst == a.rank {
		// Loopback: one copy into the posted region at the next scheduling
		// point (no wire to elide it on).
		a.sw.Counters.Add(stats.PacketsSent, 1)
		a.sw.Counters.Add(stats.BytesSent, int64(len(payload)))
		a.eng.Schedule(0, func() {
			k := directKey{src: a.rank, token: token}
			r := a.posted[k]
			if r == nil {
				panic(fmt.Sprintf("switchnet: direct loopback at rank %d with no posted region (token %d)", a.rank, token))
			}
			copy(r.buf, payload)
			delete(a.posted, k)
			if sent != nil {
				sent()
			}
			if a.directDone != nil {
				a.directDone(a.rank, token)
			}
		})
		return
	}
	nfrag := (len(payload) + chunk - 1) / chunk
	if nfrag == 0 {
		nfrag = 1
	}
	msg := &directMsg{remaining: nfrag, sent: sent}
	for off := 0; ; off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		a.seqGen++
		p := &txPacket{
			dst: dst, seq: a.seqGen, data: payload[off:end],
			direct: true, token: token, off: uint32(off), msg: msg,
		}
		a.unacked[p.seq] = p
		a.transmit(p, false, nil)
		if end >= len(payload) {
			break
		}
	}
}

// Close implements fabric.Transport.
func (a *Adapter) Close() error { return nil }

// Send implements fabric.Transport: queue one packet for dst. The sent
// callback, if non-nil, fires when the packet has fully left the adapter
// (the origin buffer drain point used for LAPI's origin counter on
// zero-copy sends). Send never blocks.
func (a *Adapter) Send(ctx exec.Context, dst int, data []byte, sent func()) {
	fabric.CheckRank(dst, len(a.sw.adapters))
	if len(data) > a.sw.cfg.PacketBytes {
		panic(fmt.Sprintf("switchnet: packet of %d bytes exceeds PacketBytes=%d", len(data), a.sw.cfg.PacketBytes))
	}
	if dst == a.rank {
		// Loopback: no wire, deliver at the next scheduling point.
		a.sw.Counters.Add(stats.PacketsSent, 1)
		a.sw.Counters.Add(stats.BytesSent, int64(len(data)))
		a.eng.Schedule(0, func() {
			if sent != nil {
				sent()
			}
			a.sw.adapters[dst].receiveLoopback(a.rank, data)
		})
		return
	}
	a.seqGen++
	p := &txPacket{dst: dst, seq: a.seqGen, data: data}
	a.unacked[p.seq] = p
	a.transmit(p, false, sent)
}

// post schedules fn at absolute virtual time at on dst's engine. When dst
// shares a's engine the schedule is direct (and identical, event for
// event, to the pre-sharding code: ScheduleAt(at) is Schedule(at-now));
// otherwise the event goes to a's shard outbox for the epoch coordinator
// to import at the next barrier. Cross-shard posts are only ever created
// at least WireLatency ahead of the sender's clock — the lookahead
// guarantee the coordinator relies on.
func (a *Adapter) post(dst *Adapter, at sim.Time, fn func()) {
	if dst.eng == a.eng {
		a.eng.ScheduleAt(at, fn)
		return
	}
	sl := &a.sw.shards[a.shard]
	sl.outbox = append(sl.outbox, parallel.Export{At: at, Shard: dst.shard, Fn: fn})
}

// transmit puts p on the wire (first transmission or retransmission).
func (a *Adapter) transmit(p *txPacket, isRetry bool, sent func()) {
	cfg := a.sw.cfg
	eng := a.eng

	wireBytes := len(p.data)
	if p.direct {
		wireBytes += directHdrBytes
	}
	wire := cfg.wireTime(wireBytes)
	depart := eng.Now()
	if a.linkFree > depart {
		depart = a.linkFree
	}
	a.linkFree = depart + sim.Time(wire)

	a.sw.Counters.Add(stats.PacketsSent, 1)
	a.sw.Counters.Add(stats.BytesSent, int64(wireBytes))

	drop := false
	extra := time.Duration(0)
	if !isRetry {
		a.dataSent++
		if cfg.DropEvery > 0 && a.dataSent%uint64(cfg.DropEvery) == 0 {
			drop = true
		}
		if !drop && cfg.ReorderEvery > 0 && a.dataSent%uint64(cfg.ReorderEvery) == 0 {
			extra = time.Duration(cfg.ReorderDelayPackets) * cfg.wireTime(cfg.PacketBytes)
		}
	} else {
		a.sw.Counters.Add(stats.Retransmits, 1)
	}

	if sent != nil {
		eng.Schedule(time.Duration(a.linkFree-eng.Now()), sent)
	}

	if drop {
		a.sw.Counters.Add(stats.PacketsDropped, 1)
	} else {
		// Egress-link drain, then (optionally) a shared spine link, then
		// propagation.
		ready := a.linkFree
		if a.sw.spineFree != nil {
			// Deterministic multiplicative hash of the (src,dst) pair:
			// routes are fixed per pair, as on the real switch.
			h := uint64(a.rank)*0x9E3779B97F4A7C15 ^ uint64(p.dst)*0xC2B2AE3D27D4EB4F
			sl := &a.sw.spineFree[h%uint64(len(a.sw.spineFree))]
			start := ready
			if *sl > start {
				start = *sl
			}
			*sl = start + sim.Time(wire)
			ready = *sl
		}
		arrive := ready + sim.Time(cfg.WireLatency) + sim.Time(extra)
		src, seq, data := a.rank, p.seq, p.data
		dstAd := a.sw.adapters[p.dst]
		if p.direct {
			token, off := p.token, p.off
			a.post(dstAd, arrive, func() {
				dstAd.receiveDirect(src, seq, token, off, data)
			})
		} else {
			a.post(dstAd, arrive, func() {
				dstAd.receive(src, seq, data)
			})
		}
	}

	// Arm the retransmission timer.
	seq := p.seq
	eng.Schedule(time.Duration(a.linkFree-eng.Now())+cfg.RTO, func() {
		q, ok := a.unacked[seq]
		if !ok || q.acked {
			return
		}
		q.retries++
		a.transmit(q, true, nil)
	})
}

// receive handles an arriving data packet at the destination adapter.
func (a *Adapter) receive(src int, seq uint64, data []byte) {
	// Always (re-)acknowledge: the earlier ack may have raced a
	// retransmission.
	a.sendAck(src, seq)
	if a.seen[src][seq] {
		return // duplicate from retransmission
	}
	a.seen[src][seq] = true
	a.sw.Counters.Add(stats.PacketsRecv, 1)
	a.sw.Counters.Add(stats.BytesRecv, int64(len(data)))
	if a.deliver == nil {
		panic(fmt.Sprintf("switchnet: packet for rank %d with no deliver callback", a.rank))
	}
	a.deliver(src, data)
}

// receiveDirect lands one direct-lane fragment in its pre-posted region —
// modeled as adapter DMA: the copy below is the simulation updating the
// bytes a real adapter would have placed without CPU involvement, so no
// virtual time is charged here beyond the wire time transmit already spent.
func (a *Adapter) receiveDirect(src int, seq uint64, token uint64, off uint32, data []byte) {
	a.sendAck(src, seq)
	if a.seen[src][seq] {
		return // duplicate from retransmission
	}
	a.seen[src][seq] = true
	a.sw.Counters.Add(stats.PacketsRecv, 1)
	a.sw.Counters.Add(stats.BytesRecv, int64(len(data)+directHdrBytes))
	k := directKey{src: src, token: token}
	r := a.posted[k]
	if r == nil {
		panic(fmt.Sprintf("switchnet: direct fragment at rank %d with no posted region (src %d token %d)", a.rank, src, token))
	}
	if int(off)+len(data) > len(r.buf) {
		panic(fmt.Sprintf("switchnet: direct fragment at rank %d overflows region (src %d token %d off %d len %d region %d)", a.rank, src, token, off, len(data), len(r.buf)))
	}
	copy(r.buf[off:], data)
	r.recvd += len(data)
	if r.recvd >= len(r.buf) {
		delete(a.posted, k)
		if a.directDone == nil {
			panic(fmt.Sprintf("switchnet: direct completion at rank %d with no done callback", a.rank))
		}
		a.directDone(src, token)
	}
}

// receiveLoopback bypasses sequencing for self-sends.
func (a *Adapter) receiveLoopback(src int, data []byte) {
	a.sw.Counters.Add(stats.PacketsRecv, 1)
	a.sw.Counters.Add(stats.BytesRecv, int64(len(data)))
	if a.deliver == nil {
		panic(fmt.Sprintf("switchnet: packet for rank %d with no deliver callback", a.rank))
	}
	a.deliver(src, data)
}

// sendAck returns a small acknowledgement to src. Acks consume reverse-link
// bandwidth but are never dropped or reordered (the adapter hardware
// protocol), which keeps retransmission logic simple and deterministic.
func (a *Adapter) sendAck(src int, seq uint64) {
	cfg := a.sw.cfg
	eng := a.eng
	wire := cfg.wireTime(cfg.AckBytes)
	depart := eng.Now()
	if a.linkFree > depart {
		depart = a.linkFree
	}
	a.linkFree = depart + sim.Time(wire)
	a.sw.Counters.Add(stats.AcksSent, 1)
	arrive := a.linkFree + sim.Time(cfg.WireLatency)
	origin := a.sw.adapters[src]
	a.post(origin, arrive, func() {
		if p, ok := origin.unacked[seq]; ok {
			p.acked = true
			delete(origin.unacked, seq)
			if m := p.msg; m != nil {
				// Direct-lane fragment: the payload slice is pinned until
				// the whole message is acked, then the borrow ends.
				m.remaining--
				if m.remaining == 0 && m.sent != nil {
					m.sent()
				}
			}
		}
	})
}

// PendingAcks reports the number of unacknowledged packets (test hook).
func (a *Adapter) PendingAcks() int { return len(a.unacked) }
