package switchnet

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"golapi/internal/exec"
	"golapi/internal/sim"
	"golapi/internal/stats"
)

// harness builds a switch plus per-rank receive logs.
type harness struct {
	eng  *sim.Engine
	sw   *Switch
	recv [][]string // per rank: "src:payload"
}

func newHarness(t *testing.T, n int, cfg Config) *harness {
	t.Helper()
	eng := sim.NewEngine()
	sw, err := New(eng, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{eng: eng, sw: sw, recv: make([][]string, n)}
	for i := 0; i < n; i++ {
		i := i
		sw.Endpoint(i).SetDeliver(func(src int, data []byte) {
			h.recv[i] = append(h.recv[i], fmt.Sprintf("%d:%s", src, data))
		})
	}
	return h
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	bad := []Config{
		{PacketBytes: 0, Bandwidth: 1e6, RTO: time.Millisecond},
		{PacketBytes: 1024, Bandwidth: 0, RTO: time.Millisecond},
		{PacketBytes: 1024, Bandwidth: 1e6, RTO: 0},
	}
	for i, cfg := range bad {
		if _, err := New(eng, 2, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(eng, 2, DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestBasicDelivery(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		h.sw.Endpoint(0).Send(ctx, 1, []byte("hello"), nil)
	})
	h.run(t)
	if len(h.recv[1]) != 1 || h.recv[1][0] != "0:hello" {
		t.Fatalf("recv = %v", h.recv[1])
	}
}

func TestDeliveryLatency(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(t, 2, cfg)
	var arrived sim.Time
	h.sw.Endpoint(1).SetDeliver(func(src int, data []byte) {
		arrived = h.eng.Now()
	})
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		h.sw.Endpoint(0).Send(ctx, 1, make([]byte, 1024), nil)
	})
	h.run(t)
	want := sim.Time(cfg.wireTime(1024) + cfg.WireLatency)
	if arrived != want {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two packets back to back: second arrives one wire time after first.
	cfg := DefaultConfig()
	h := newHarness(t, 2, cfg)
	var arrivals []sim.Time
	h.sw.Endpoint(1).SetDeliver(func(src int, data []byte) {
		arrivals = append(arrivals, h.eng.Now())
	})
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		h.sw.Endpoint(0).Send(ctx, 1, make([]byte, 1024), nil)
		h.sw.Endpoint(0).Send(ctx, 1, make([]byte, 1024), nil)
	})
	h.run(t)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	gap := time.Duration(arrivals[1] - arrivals[0])
	if gap != cfg.wireTime(1024) {
		t.Fatalf("inter-arrival gap %v, want one wire time %v", gap, cfg.wireTime(1024))
	}
}

func TestSentCallbackAtDrain(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(t, 2, cfg)
	var sentAt sim.Time
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		h.sw.Endpoint(0).Send(ctx, 1, make([]byte, 1024), func() {
			sentAt = h.eng.Now()
		})
	})
	h.run(t)
	if sentAt != sim.Time(cfg.wireTime(1024)) {
		t.Fatalf("sent callback at %v, want %v", sentAt, cfg.wireTime(1024))
	}
}

func TestLoopback(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		h.sw.Endpoint(0).Send(ctx, 0, []byte("me"), nil)
	})
	h.run(t)
	if len(h.recv[0]) != 1 || h.recv[0][0] != "0:me" {
		t.Fatalf("loopback recv = %v", h.recv[0])
	}
}

func TestOversizePacketPanics(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.eng.Go("sender", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversize packet did not panic")
			}
		}()
		ctx := exec.SimContext(p)
		h.sw.Endpoint(0).Send(ctx, 1, make([]byte, 2048), nil)
	})
	h.run(t)
}

func TestReordering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReorderEvery = 3
	h := newHarness(t, 2, cfg)
	var order []string
	h.sw.Endpoint(1).SetDeliver(func(src int, data []byte) {
		order = append(order, string(data))
	})
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		for i := 0; i < 9; i++ {
			h.sw.Endpoint(0).Send(ctx, 1, []byte(fmt.Sprintf("p%d", i)), nil)
		}
	})
	h.run(t)
	if len(order) != 9 {
		t.Fatalf("received %d packets, want 9: %v", len(order), order)
	}
	inOrder := true
	for i := range order {
		if order[i] != fmt.Sprintf("p%d", i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("ReorderEvery=3 produced in-order delivery: %v", order)
	}
}

func TestDropsAreRetransmitted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropEvery = 2 // brutal: half of first transmissions lost
	h := newHarness(t, 2, cfg)
	seen := map[string]int{}
	h.sw.Endpoint(1).SetDeliver(func(src int, data []byte) {
		seen[string(data)]++
	})
	const n = 20
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		for i := 0; i < n; i++ {
			h.sw.Endpoint(0).Send(ctx, 1, []byte(fmt.Sprintf("m%d", i)), nil)
		}
	})
	h.run(t)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("m%d", i)
		if seen[k] != 1 {
			t.Fatalf("message %s delivered %d times, want exactly 1", k, seen[k])
		}
	}
	if h.sw.Counters.Get(stats.Retransmits) == 0 {
		t.Fatal("expected retransmissions with DropEvery=2")
	}
	if h.sw.Endpoint(0).PendingAcks() != 0 {
		t.Fatalf("sender still has %d unacked packets", h.sw.Endpoint(0).PendingAcks())
	}
}

// TestLossyReorderedExactlyOnce is the transport's core invariant: under any
// combination of drop and reorder settings, every packet is delivered
// exactly once.
func TestLossyReorderedExactlyOnce(t *testing.T) {
	prop := func(dropEvery, reorderEvery uint8, count uint8) bool {
		n := int(count%64) + 1
		cfg := DefaultConfig()
		cfg.DropEvery = int(dropEvery % 5)       // 0..4
		cfg.ReorderEvery = int(reorderEvery % 5) // 0..4
		if cfg.DropEvery == 1 {
			cfg.DropEvery = 2 // DropEvery=1 would drop every first transmission; still works but slow
		}
		eng := sim.NewEngine()
		sw, err := New(eng, 2, cfg)
		if err != nil {
			return false
		}
		seen := map[string]int{}
		sw.Endpoint(1).SetDeliver(func(src int, data []byte) { seen[string(data)]++ })
		sw.Endpoint(0).SetDeliver(func(src int, data []byte) {})
		eng.Go("sender", func(p *sim.Proc) {
			ctx := exec.SimContext(p)
			for i := 0; i < n; i++ {
				sw.Endpoint(0).Send(ctx, 1, []byte(fmt.Sprintf("x%d", i)), nil)
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthMatchesModel(t *testing.T) {
	// Stream 1000 full packets; throughput must equal PacketBytes/wireTime.
	cfg := DefaultConfig()
	h := newHarness(t, 2, cfg)
	var last sim.Time
	n := 0
	h.sw.Endpoint(1).SetDeliver(func(src int, data []byte) {
		last = h.eng.Now()
		n++
	})
	const packets = 1000
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		for i := 0; i < packets; i++ {
			h.sw.Endpoint(0).Send(ctx, 1, make([]byte, cfg.PacketBytes), nil)
		}
	})
	h.run(t)
	if n != packets {
		t.Fatalf("delivered %d packets", n)
	}
	bytes := float64(packets * cfg.PacketBytes)
	rate := bytes / (time.Duration(last).Seconds())
	if rate < cfg.Bandwidth*0.98 || rate > cfg.Bandwidth*1.02 {
		t.Fatalf("streamed rate %.1f MB/s, want ≈%.1f MB/s", rate/1e6, cfg.Bandwidth/1e6)
	}
}

func TestCountersAccounting(t *testing.T) {
	h := newHarness(t, 3, DefaultConfig())
	h.eng.Go("sender", func(p *sim.Proc) {
		ctx := exec.SimContext(p)
		h.sw.Endpoint(0).Send(ctx, 1, make([]byte, 100), nil)
		h.sw.Endpoint(0).Send(ctx, 2, make([]byte, 200), nil)
	})
	h.run(t)
	if got := h.sw.Counters.Get(stats.PacketsSent); got != 2 {
		t.Errorf("packets_sent = %d", got)
	}
	if got := h.sw.Counters.Get(stats.BytesSent); got != 300 {
		t.Errorf("bytes_sent = %d", got)
	}
	if got := h.sw.Counters.Get(stats.PacketsRecv); got != 2 {
		t.Errorf("packets_recv = %d", got)
	}
	if got := h.sw.Counters.Get(stats.AcksSent); got != 2 {
		t.Errorf("acks_sent = %d", got)
	}
}

func TestManyToOneContention(t *testing.T) {
	// All ranks blast rank 0; everything must arrive exactly once.
	const n = 8
	h := newHarness(t, n, DefaultConfig())
	count := 0
	h.sw.Endpoint(0).SetDeliver(func(src int, data []byte) { count++ })
	for r := 1; r < n; r++ {
		r := r
		h.eng.Go("sender", func(p *sim.Proc) {
			ctx := exec.SimContext(p)
			for i := 0; i < 50; i++ {
				h.sw.Endpoint(r).Send(ctx, 0, make([]byte, 512), nil)
			}
		})
	}
	h.run(t)
	if count != (n-1)*50 {
		t.Fatalf("rank 0 received %d packets, want %d", count, (n-1)*50)
	}
}

func TestSpineContentionCapsAggregateBandwidth(t *testing.T) {
	// With a single interior spine link, four simultaneous streams share
	// one link's bandwidth; with the ideal crossbar they each get a full
	// link. Compare completion times.
	finish := func(spine int) sim.Time {
		cfg := DefaultConfig()
		cfg.SpineLinks = spine
		eng := sim.NewEngine()
		sw, err := New(eng, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		const packets = 200
		left := 4 * packets
		var last sim.Time
		for r := 4; r < 8; r++ {
			sw.Endpoint(r).SetDeliver(func(src int, data []byte) {
				left--
				if left == 0 {
					last = eng.Now()
				}
			})
		}
		for r := 0; r < 4; r++ {
			r := r
			eng.Go("stream", func(p *sim.Proc) {
				ctx := exec.SimContext(p)
				for i := 0; i < packets; i++ {
					sw.Endpoint(r).Send(ctx, r+4, make([]byte, cfg.PacketBytes), nil)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if left != 0 {
			t.Fatal("packets lost")
		}
		return last
	}
	ideal := finish(0)
	congested := finish(1)
	if congested < 3*ideal {
		t.Fatalf("single spine link (%v) should be ~4x slower than ideal crossbar (%v)", congested, ideal)
	}
	// With many spine links the four flows mostly avoid each other
	// (hashed routing can still collide pairs, as on the real switch).
	wide := finish(64)
	if wide > congested/2 {
		t.Fatalf("64 spine links (%v) should be far faster than one (%v)", wide, congested)
	}
	if wide < ideal {
		t.Fatalf("spine model made things faster than ideal: %v < %v", wide, ideal)
	}
}
