package switchnet_test

import (
	"strings"
	"testing"

	"golapi/internal/analysis"
	"golapi/internal/analysis/atomicmix"
	"golapi/internal/analysis/concurrency"
	"golapi/internal/analysis/goteardown"
	"golapi/internal/analysis/racefree"
)

// TestConcurrencyClean locks in the lapivet v4 result on the switch
// fabric: the port pumps and the sharded simulation carry zero
// unsuppressed racefree, atomicmix and goteardown findings beyond the two
// justified registration-precedes-wire-up suppressions on SetDeliver and
// SetDirectDone. The probe proves the result is non-vacuous — the model
// sees this package's spawns and resolves at least one mutex-guarded
// access — before the clean verdict is trusted.
func TestConcurrencyClean(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(".")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}

	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "verifies the concurrency model activates on this package",
		Run: func(pass *analysis.Pass) error {
			m := concurrency.Get(pass)
			spawns := 0
			for _, s := range m.Spawns {
				if s.Parent.Pkg == pass.Pkg {
					spawns++
				}
			}
			if spawns == 0 {
				t.Error("model sees no spawns in this package: the port pumps are invisible")
			}
			locked := false
			for _, u := range m.Units {
				if u.Pkg != pass.Pkg {
					continue
				}
				for _, a := range u.Accesses {
					if len(a.Locks) > 0 {
						locked = true
					}
				}
			}
			if !locked {
				t.Error("no lock-guarded access resolved in this package: lockset inference is dead")
			}
			return nil
		},
	}
	if _, _, err := analysis.RunPackage(l, pkg, []*analysis.Analyzer{probe}); err != nil {
		t.Fatalf("RunPackage(probe): %v", err)
	}

	passes := []*analysis.Analyzer{racefree.Analyzer, atomicmix.Analyzer, goteardown.Analyzer}
	diags, _, err := analysis.RunPackage(l, pkg, passes)
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		name := pos.Filename
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		t.Errorf("%s:%d: [%s] %s", name, pos.Line, d.Analyzer, d.Message)
	}
}
