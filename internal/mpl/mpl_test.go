package mpl_test

import (
	"testing"
	"time"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/mpi"
	"golapi/internal/mpl"
	"golapi/internal/switchnet"
)

func runMPL(t *testing.T, n int, main func(ctx exec.Context, mt *mpl.Task)) {
	t.Helper()
	c, err := cluster.NewSimMPL(n, switchnet.DefaultConfig(), mpi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(main); err != nil {
		t.Fatal(err)
	}
}

func TestRcvncallInvokesHandler(t *testing.T) {
	// The GA/MPL pattern (§5.2): a service handler fires on request
	// arrival without any blocking receive, and replies from handler
	// context.
	const tagReq, tagRep = 1, 2
	runMPL(t, 2, func(ctx exec.Context, mt *mpl.Task) {
		if mt.Self() == 1 {
			buf := make([]byte, 64)
			err := mt.Rcvncall(ctx, mpi.AnySource, tagReq, buf, func(hctx exec.Context, st mpi.Status) {
				// Echo back, doubled, from the handler.
				reply := append(buf[:st.Len], buf[:st.Len]...)
				mt.Send(hctx, st.Source, tagRep, reply)
			})
			if err != nil {
				t.Error(err)
			}
			mt.Barrier(ctx)
			return
		}
		mt.Send(ctx, 1, tagReq, []byte("abc"))
		rep := make([]byte, 16)
		st, err := mt.Recv(ctx, 1, tagRep, rep)
		if err != nil {
			t.Error(err)
		}
		if string(rep[:st.Len]) != "abcabc" {
			t.Errorf("reply = %q", rep[:st.Len])
		}
		mt.Barrier(ctx)
	})
}

func TestRcvncallChargesContextCost(t *testing.T) {
	// The handler must start at least RcvncallCost after the message has
	// arrived — the AIX context-creation overhead that dominates the MPL
	// baseline's latency.
	var arrived, handled time.Duration
	runMPL(t, 2, func(ctx exec.Context, mt *mpl.Task) {
		if mt.Self() == 1 {
			buf := make([]byte, 8)
			probe := make([]byte, 8)
			// A plain Irecv records arrival time cheaply for reference.
			r, _ := mt.Irecv(ctx, 0, 1, probe)
			mt.Rcvncall(ctx, mpi.AnySource, 2, buf, func(hctx exec.Context, st mpi.Status) {
				handled = hctx.Now()
			})
			mt.Wait(ctx, r)
			arrived = ctx.Now()
			mt.Barrier(ctx)
			return
		}
		mt.Send(ctx, 1, 1, []byte("t0mark"))
		mt.Send(ctx, 1, 2, []byte("callme"))
		mt.Barrier(ctx)
	})
	cost := mpi.DefaultConfig().RcvncallCost
	if handled < arrived {
		t.Fatalf("handler at %v before reference arrival %v", handled, arrived)
	}
	if handled-arrived < cost/2 {
		t.Fatalf("handler fired %v after arrival, want >= ~%v context cost", handled-arrived, cost)
	}
}

func TestRcvncallRepost(t *testing.T) {
	// A self-re-posting handler services a stream of requests — the GA
	// server loop.
	const n = 5
	served := 0
	runMPL(t, 2, func(ctx exec.Context, mt *mpl.Task) {
		if mt.Self() == 1 {
			buf := make([]byte, 8)
			var handler mpl.Handler
			handler = func(hctx exec.Context, st mpi.Status) {
				served++
				mt.Send(hctx, st.Source, 2, buf[:st.Len])
				if served < n {
					mt.Rcvncall(hctx, mpi.AnySource, 1, buf, handler)
				}
			}
			mt.Rcvncall(ctx, mpi.AnySource, 1, buf, handler)
			mt.Barrier(ctx)
			return
		}
		rep := make([]byte, 8)
		for i := 0; i < n; i++ {
			mt.Send(ctx, 1, 1, []byte{byte(i)})
			st, _ := mt.Recv(ctx, 1, 2, rep)
			if st.Len != 1 || rep[0] != byte(i) {
				t.Errorf("request %d: reply %v", i, rep[:st.Len])
			}
		}
		mt.Barrier(ctx)
	})
	if served != n {
		t.Fatalf("served %d requests, want %d", served, n)
	}
}

func TestLockrncTogglesMode(t *testing.T) {
	runMPL(t, 1, func(ctx exec.Context, mt *mpl.Task) {
		if mt.Config().Mode != mpi.Interrupt {
			t.Fatal("default mode not interrupt")
		}
		mt.Lockrnc()
		if mt.Config().Mode != mpi.Polling {
			t.Error("Lockrnc did not disable interrupts")
		}
		mt.Unlockrnc()
		if mt.Config().Mode != mpi.Interrupt {
			t.Error("Unlockrnc did not restore interrupts")
		}
	})
}
