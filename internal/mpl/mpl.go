// Package mpl models the slice of IBM's MPL library the paper's baseline
// GA implementation used (§5.2): the message-passing core (re-exported from
// the mpi package — on the SP both rode the same transport protocol) plus
// the interrupt-driven receive-and-call mechanism rcvncall and the
// interrupt lock lockrnc.
//
// rcvncall is how one-sided-ish access was retrofitted onto a two-sided
// library: a request message interrupts the target and runs a handler, at
// the cost of AIX handler-context creation — the dominant term in the
// baseline's latency (Table 2's 200 µs interrupt round trip, and GA/MPL's
// 221 µs get).
package mpl

import (
	"golapi/internal/exec"
	"golapi/internal/fabric"
	"golapi/internal/mpi"
)

// Task is an MPL endpoint: the MPI-style two-sided core plus rcvncall.
type Task struct {
	*mpi.Task
}

// Handler is an rcvncall message handler. It runs in its own activity (the
// modelled AIX interrupt-handler context) after the handler-context
// creation cost has been charged. It may issue MPL calls.
type Handler func(ctx exec.Context, st mpi.Status)

// NewTask initializes an MPL task over tr.
func NewTask(rt exec.Runtime, tr fabric.Transport, cfg mpi.Config) (*Task, error) {
	mt, err := mpi.NewTask(rt, tr, cfg)
	if err != nil {
		return nil, err
	}
	return &Task{Task: mt}, nil
}

// Rcvncall posts buf to receive the next message matching (src, tag) and
// arranges for h to run on arrival, interrupt-style — no blocking receive
// required. The handler typically re-posts with another Rcvncall to keep a
// service loop alive, exactly like GA's MPL request handler (§5.2).
func (t *Task) Rcvncall(ctx exec.Context, src, tag int, buf []byte, h Handler) error {
	_, err := t.IrecvCall(ctx, src, tag, buf, func(hctx exec.Context, st mpi.Status) {
		h(hctx, st)
	})
	return err
}

// Lockrnc disables interrupt-driven handler dispatch (progress falls back
// to polling), and Unlockrnc re-enables it. The baseline GA used this pair
// to make accumulate atomic with respect to rcvncall handlers (§5.2).
func (t *Task) Lockrnc() { t.SetMode(mpi.Polling) }

// Unlockrnc re-enables interrupt-driven dispatch after Lockrnc.
func (t *Task) Unlockrnc() { t.SetMode(mpi.Interrupt) }
