// Package stats provides lightweight named counters used across the
// simulator and protocol layers to account for packets, bytes, copies,
// interrupts and retransmissions. Counters are safe for concurrent use so
// the same type serves both the single-threaded simulator and the real
// TCP transport.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a set of named monotonic counters. The zero value is ready to
// use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// Add increments name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Max raises name to v if v exceeds the current value — a high-water
// mark rather than a monotonic sum (e.g. the deepest merge queue an
// epoch barrier ever saw). Mixing Add and Max on the same name is a
// caller bug; nothing enforces it.
func (c *Counters) Max(name string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	if v > c.m[name] {
		c.m[name] = v
	}
}

// Get returns the current value of name (zero if never added).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = nil
}

// String renders the counters sorted by name, one "name=value" per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%s=%d\n", k, snap[k])
	}
	return b.String()
}

// Common counter names, shared so reports line up across packages.
const (
	PacketsSent    = "packets_sent"
	PacketsRecv    = "packets_recv"
	BytesSent      = "bytes_sent"
	BytesRecv      = "bytes_recv"
	PacketsDropped = "packets_dropped"
	Retransmits    = "retransmits"
	AcksSent       = "acks_sent"
	Interrupts     = "interrupts"
	Polls          = "polls"
	CopiesBytes    = "copy_bytes"
	HeaderHandlers = "header_handlers"
	ComplHandlers  = "completion_handlers"
	RndvMsgs       = "rndv_msgs"       // Puts/Gets routed via RTS/CTS rendezvous
	RndvRegHits    = "rndv_reg_hits"   // registration-cache hits at the target
	RndvRegMisses  = "rndv_reg_misses" // registration-cache misses (RegisterCost charged)
)

// Epoch-coordinator counters (package parallel): per-barrier accounting
// of the conservative-lookahead runner, so shard imbalance — one shard
// doing all the work while the others spin through empty epochs — is
// visible in counter dumps and traces. The per-shard names are produced
// by ShardEpochs/ShardOutboxHighWater so reports line up across
// packages.
const (
	EpochBarriers       = "epoch_barriers"         // lookahead epochs executed
	EpochImports        = "epoch_imports"          // cross-shard events merged at barriers
	EpochMergeHighWater = "epoch_merge_high_water" // deepest single-barrier merge queue (Max)
	SpineRequests       = "spine_requests"         // interior-occupancy requests arbitrated at barriers
	SpineReqHighWater   = "spine_req_high_water"   // deepest single-barrier arbitration queue (Max)
)

// ShardEpochs names shard i's active-epoch counter: epochs in which the
// shard had at least one pending event when the window opened.
func ShardEpochs(i int) string { return fmt.Sprintf("epoch_shard_%d_active", i) }

// ShardOutboxHighWater names shard i's outbox high-water mark: the most
// cross-shard events it exported in one epoch (Max).
func ShardOutboxHighWater(i int) string { return fmt.Sprintf("epoch_shard_%d_outbox_high_water", i) }

// Collective-layer counters (package collective): per-algorithm step,
// byte and atomic-op accounting, so the cost attribution of the
// Figure-2-style collective comparison is observable per task.
const (
	CollCalls        = "coll_calls"         // collective operations entered
	CollRingSteps    = "coll_ring_steps"    // ring put+wait steps executed
	CollRingBytes    = "coll_ring_bytes"    // bytes moved by ring steps
	CollRDSteps      = "coll_rd_steps"      // recursive-doubling exchange steps
	CollRDBytes      = "coll_rd_bytes"      // bytes moved by recursive doubling
	CollTreeSteps    = "coll_tree_steps"    // binomial-tree edges traversed
	CollTreeBytes    = "coll_tree_bytes"    // bytes moved along tree edges
	CollBarrierSteps = "coll_barrier_steps" // barrier rounds (dissemination) or releases
	CollRmwOps       = "coll_rmw_ops"       // FetchAndAdd ops issued (central barrier)
)
