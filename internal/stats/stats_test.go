package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestAddGet(t *testing.T) {
	var c Counters
	if c.Get("missing") != 0 {
		t.Error("missing counter not zero")
	}
	c.Add("a", 3)
	c.Add("a", 4)
	c.Add("b", -1)
	if c.Get("a") != 7 || c.Get("b") != -1 {
		t.Errorf("a=%d b=%d", c.Get("a"), c.Get("b"))
	}
}

func TestMaxHighWater(t *testing.T) {
	var c Counters
	c.Max("hw", 3)
	c.Max("hw", 7)
	c.Max("hw", 5)
	if c.Get("hw") != 7 {
		t.Errorf("hw = %d, want 7 (high-water, not last)", c.Get("hw"))
	}
	c.Max("neg", -2) // never below the zero floor of a fresh counter
	if c.Get("neg") != 0 {
		t.Errorf("neg = %d, want 0", c.Get("neg"))
	}
}

func TestShardNames(t *testing.T) {
	if ShardEpochs(3) != "epoch_shard_3_active" {
		t.Errorf("ShardEpochs(3) = %q", ShardEpochs(3))
	}
	if ShardOutboxHighWater(0) != "epoch_shard_0_outbox_high_water" {
		t.Errorf("ShardOutboxHighWater(0) = %q", ShardOutboxHighWater(0))
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var c Counters
	c.Add("x", 1)
	snap := c.Snapshot()
	c.Add("x", 1)
	if snap["x"] != 1 {
		t.Error("snapshot mutated by later Add")
	}
	snap["x"] = 99
	if c.Get("x") != 2 {
		t.Error("mutating snapshot affected counters")
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.Add("x", 5)
	c.Reset()
	if c.Get("x") != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestStringSorted(t *testing.T) {
	var c Counters
	c.Add("zeta", 1)
	c.Add("alpha", 2)
	s := c.String()
	if !strings.HasPrefix(s, "alpha=2\n") || !strings.Contains(s, "zeta=1\n") {
		t.Errorf("String() = %q", s)
	}
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Error("output not sorted")
	}
}

func TestConcurrentAdds(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if c.Get("n") != 8000 {
		t.Fatalf("n = %d, want 8000", c.Get("n"))
	}
}
