package stats_test

import (
	"strings"
	"testing"

	"golapi/internal/analysis"
	"golapi/internal/analysis/atomicmix"
	"golapi/internal/analysis/concurrency"
	"golapi/internal/analysis/goteardown"
	"golapi/internal/analysis/racefree"
)

// TestConcurrencyClean pins the Counters accounting story: every access to
// the counter map is mutex-guarded, so racefree passes this package with
// zero suppressions — Counters stays safe to share between the simulator,
// the transport goroutines and the epoch barrier without per-caller
// discipline. The probe asserts the guarantee structurally (the model
// resolves the m-field accesses under the mu lockset) rather than relying
// on the passes having merely found nothing to say.
func TestConcurrencyClean(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(".")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}

	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "verifies every counter-map access is resolved under mu",
		Run: func(pass *analysis.Pass) error {
			m := concurrency.Get(pass)
			accesses := 0
			for _, u := range m.Units {
				if u.Pkg != pass.Pkg {
					continue
				}
				for _, a := range u.Accesses {
					if a.Obj.Name() != "m" {
						continue
					}
					accesses++
					guarded := false
					for o := range a.Locks {
						if o.Name() == "mu" {
							guarded = true
						}
					}
					if !guarded {
						pos := l.Fset.Position(a.Pos)
						t.Errorf("%s:%d: access to Counters.m not under mu (lockset %v)", pos.Filename, pos.Line, a.Locks)
					}
				}
			}
			if accesses == 0 {
				t.Error("model resolved no accesses to Counters.m: the guarantee is vacuous")
			}
			return nil
		},
	}
	if _, _, err := analysis.RunPackage(l, pkg, []*analysis.Analyzer{probe}); err != nil {
		t.Fatalf("RunPackage(probe): %v", err)
	}

	passes := []*analysis.Analyzer{racefree.Analyzer, atomicmix.Analyzer, goteardown.Analyzer}
	diags, _, err := analysis.RunPackage(l, pkg, passes)
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		name := pos.Filename
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		t.Errorf("%s:%d: [%s] %s", name, pos.Line, d.Analyzer, d.Message)
	}
}
