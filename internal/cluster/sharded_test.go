package cluster

import (
	"time"

	"testing"

	"golapi/internal/exec"
	"golapi/internal/fabric"
	"golapi/internal/lapi"
	"golapi/internal/parallel"
	"golapi/internal/switchnet"
	"golapi/internal/trace"
)

// meshWorkload is the Tier B reference workload: an 8-rank neighbour ring
// where every rank streams puts to its successor and fences. It generates
// sustained cross-rank (and, under sharding, cross-shard) traffic with
// data, acks and fence packets in flight concurrently.
func meshWorkload(rounds, size int) func(ctx exec.Context, t *lapi.Task) {
	return func(ctx exec.Context, t *lapi.Task) {
		buf := t.Alloc(size * rounds)
		addrs, err := t.AddressInit(ctx, buf)
		if err != nil {
			panic(err)
		}
		next := (t.Self() + 1) % t.N()
		src := make([]byte, size)
		for i := range src {
			src[i] = byte(t.Self() + i)
		}
		for r := 0; r < rounds; r++ {
			t.PutSync(ctx, next, addrs[next]+lapi.Addr(r*size), src, lapi.NoCounter)
		}
		t.Gfence(ctx)
	}
}

// runMeshTrace executes the workload on n ranks split across shards
// (shards == 1 uses the plain single-engine Job — the serial reference)
// and returns the canonical merged trace of per-rank tracers.
func runMeshTrace(t *testing.T, shards, n int) []trace.Event {
	return runMeshTraceCfg(t, shards, n, switchnet.DefaultConfig(), 0)
}

// runMeshTraceCfg is runMeshTrace with an explicit fabric config and a
// per-rank start stagger, for the newly ungated regimes (contended
// interiors, zero wire latency).
func runMeshTraceCfg(t *testing.T, shards, n int, scfg switchnet.Config, stagger time.Duration) []trace.Event {
	t.Helper()
	tracers := make([]*trace.Tracer, n)
	for i := range tracers {
		tracers[i] = trace.New(4096)
	}
	mk := func(rank int, rt exec.Runtime, tr fabric.Transport) (*lapi.Task, error) {
		cfg := lapi.DefaultConfig()
		cfg.Tracer = tracers[rank]
		return lapi.NewTask(rt, tr, cfg)
	}
	inner := meshWorkload(20, 512)
	main := func(ctx exec.Context, tk *lapi.Task) {
		if stagger > 0 {
			ctx.Sleep(time.Duration(tk.Self()) * stagger)
		}
		inner(ctx, tk)
	}
	if shards == 1 {
		rank := 0
		j, err := NewJob(n, scfg, func(rt exec.Runtime, tr fabric.Transport) (*lapi.Task, error) {
			r := rank
			rank++
			return mk(r, rt, tr)
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Run(main); err != nil {
			t.Fatal(err)
		}
	} else {
		j, err := NewShardedJob(parallel.New(shards), shards, n, scfg, mk)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Run(main); err != nil {
			t.Fatal(err)
		}
	}
	return trace.Merge(tracers...)
}

// TestShardedTraceMatchesSerial is the Tier B determinism gate: the
// merged virtual-time trace of a sharded 8-node mesh must be byte-
// identical to the serial engine's, for every shard count, comparing (at
// least) the first 10k events.
func TestShardedTraceMatchesSerial(t *testing.T) {
	const n = 8
	serial := runMeshTrace(t, 1, n)
	if len(serial) == 0 {
		t.Fatal("serial run produced no trace events")
	}
	limit := 10000
	if len(serial) < limit {
		limit = len(serial)
	}
	for _, shards := range []int{2, 4, 8} {
		got := runMeshTrace(t, shards, n)
		if len(got) != len(serial) {
			t.Errorf("shards=%d: %d trace events, serial has %d", shards, len(got), len(serial))
		}
		for i := 0; i < limit && i < len(got); i++ {
			if got[i] != serial[i] {
				t.Fatalf("shards=%d: trace diverges at event %d:\n  serial:  %+v\n  sharded: %+v",
					shards, i, serial[i], got[i])
			}
		}
	}
}

// TestShardedContendedTraceMatchesSerial runs the Tier B determinism gate
// on the newly ungated fabric regimes: a contended spine, a fat tree, and
// zero wire latency (micro-epochs). The full protocol stack rides the
// barrier-arbitrated interior here — acks, retransmission timers, fences —
// and the merged trace must still match the serial engine byte for byte.
func TestShardedContendedTraceMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*switchnet.Config)
	}{
		{"spine", func(c *switchnet.Config) { c.SpineLinks = 2 }},
		{"fattree", func(c *switchnet.Config) { c.FatTreeLevels = []int{2, 1}; c.FatTreeArity = 2 }},
		{"zerolat", func(c *switchnet.Config) { c.WireLatency = 0 }},
	}
	// The workload is fully symmetric (every rank starts at t=0 and the
	// windowed put pipeline re-synchronizes ranks), so same-instant
	// interior claims are endemic — exactly the tie case the shared
	// (timestamp, source, per-source seq) arbitration key exists for
	// (DESIGN.md §13).
	const n = 8
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			scfg := switchnet.DefaultConfig()
			tc.mut(&scfg)
			serial := runMeshTraceCfg(t, 1, n, scfg, 0)
			if len(serial) == 0 {
				t.Fatal("serial run produced no trace events")
			}
			for _, shards := range []int{2, 4, 8} {
				got := runMeshTraceCfg(t, shards, n, scfg, 0)
				if len(got) != len(serial) {
					t.Errorf("shards=%d: %d trace events, serial has %d", shards, len(got), len(serial))
				}
				for i := 0; i < len(serial) && i < len(got); i++ {
					if got[i] != serial[i] {
						t.Fatalf("shards=%d: trace diverges at event %d:\n  serial:  %+v\n  sharded: %+v",
							shards, i, serial[i], got[i])
					}
				}
			}
		})
	}
}

// TestShardedRunToRunDeterminism: two identical sharded runs must agree
// event for event (worker scheduling must not leak into virtual time).
func TestShardedRunToRunDeterminism(t *testing.T) {
	a := runMeshTrace(t, 4, 8)
	b := runMeshTrace(t, 4, 8)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestShardedVirtualTimeMatchesSerial checks end-to-end virtual
// completion times (not just traces) across shard counts, including a
// non-power-of-two rank count with uneven shard blocks. Each rank records
// the virtual instant its fence completed; those instants must match the
// serial engine's exactly.
func TestShardedVirtualTimeMatchesSerial(t *testing.T) {
	run := func(n, shards int) []time.Duration {
		done := make([]time.Duration, n)
		inner := meshWorkload(10, 256)
		main := func(ctx exec.Context, tk *lapi.Task) {
			inner(ctx, tk)
			done[tk.Self()] = ctx.Now()
		}
		if shards == 1 {
			j, err := NewSimDefault(n)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Run(main); err != nil {
				t.Fatal(err)
			}
		} else {
			j, err := NewShardedSim(nil, shards, n, switchnet.DefaultConfig(), lapi.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Run(main); err != nil {
				t.Fatalf("n=%d shards=%d: %v", n, shards, err)
			}
		}
		return done
	}
	for _, n := range []int{3, 8} {
		want := run(n, 1)
		for shards := 2; shards <= n; shards++ {
			got := run(n, shards)
			for r := range want {
				if got[r] != want[r] {
					t.Errorf("n=%d shards=%d rank %d: fence completed at %v, serial %v",
						n, shards, r, got[r], want[r])
				}
			}
		}
	}
}
