package cluster_test

import (
	"testing"
	"time"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/lapi"
	"golapi/internal/mpi"
	"golapi/internal/sim"
	"golapi/internal/switchnet"
)

func TestNewSimValidation(t *testing.T) {
	if _, err := cluster.NewSimDefault(0); err == nil {
		t.Error("zero-task cluster accepted")
	}
	if _, err := cluster.NewSim(2, switchnet.Config{}, lapi.DefaultConfig()); err == nil {
		t.Error("invalid switch config accepted")
	}
	bad := lapi.DefaultConfig()
	bad.HeaderBytes = 4096
	if _, err := cluster.NewSim(2, switchnet.DefaultConfig(), bad); err == nil {
		t.Error("invalid lapi config accepted")
	}
}

func TestRunWaitsForAllMains(t *testing.T) {
	c, err := cluster.NewSimDefault(3)
	if err != nil {
		t.Fatal(err)
	}
	finished := 0
	if err := c.Run(func(ctx exec.Context, lt *lapi.Task) {
		ctx.Sleep(time.Duration(lt.Self()+1) * time.Millisecond)
		finished++
	}); err != nil {
		t.Fatal(err)
	}
	if finished != 3 {
		t.Fatalf("finished = %d", finished)
	}
	if c.Now() < sim.Time(3*time.Millisecond) {
		t.Fatalf("engine stopped at %v, before the slowest main", c.Now())
	}
}

func TestRunReportsDeadlock(t *testing.T) {
	c, err := cluster.NewSimDefault(2)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(ctx exec.Context, lt *lapi.Task) {
		if lt.Self() == 0 {
			// Wait for a counter nobody will ever bump.
			lt.Waitcntr(ctx, lt.NewCounter(), 1)
		}
	})
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestMPIJobIndependence(t *testing.T) {
	// Two clusters must not share state: run them interleaved.
	a, err := cluster.NewSimMPI(2, switchnet.DefaultConfig(), mpi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.NewSimMPI(2, switchnet.DefaultConfig(), mpi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	main := func(ctx exec.Context, mt *mpi.Task) {
		if mt.Self() == 0 {
			mt.Send(ctx, 1, 1, []byte("x"))
		} else {
			mt.Recv(ctx, 0, 1, make([]byte, 1))
		}
	}
	if err := a.Run(main); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(main); err != nil {
		t.Fatal(err)
	}
	if a.Now() != b.Now() {
		t.Fatalf("identical jobs took different virtual time: %v vs %v (shared state?)", a.Now(), b.Now())
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The cornerstone of the simulator: identical programs produce
	// identical virtual timelines.
	runOnce := func() sim.Time {
		c, err := cluster.NewSimDefault(4)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(func(ctx exec.Context, lt *lapi.Task) {
			buf := lt.Alloc(1 << 16)
			addrs, _ := lt.AddressInit(ctx, buf)
			cmpl := lt.NewCounter()
			for i := 0; i < 10; i++ {
				tgt := (lt.Self() + 1 + i) % lt.N()
				lt.Put(ctx, tgt, addrs[tgt], make([]byte, 3000), lapi.NoCounter, nil, cmpl)
			}
			lt.Waitcntr(ctx, cmpl, 10)
			lt.Gfence(ctx)
		}); err != nil {
			t.Fatal(err)
		}
		return c.Now()
	}
	t1, t2, t3 := runOnce(), runOnce(), runOnce()
	if t1 != t2 || t2 != t3 {
		t.Fatalf("nondeterministic timelines: %v, %v, %v", t1, t2, t3)
	}
}
