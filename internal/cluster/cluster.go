// Package cluster assembles simulated jobs: an engine, a switch, and one
// communication task per rank, with an SPMD-style entry point. It is the
// shared scaffolding for tests, benchmarks and examples, for all three
// libraries (LAPI, MPI, MPL).
package cluster

import (
	"fmt"
	"sync"

	"golapi/internal/collective"
	"golapi/internal/exec"
	"golapi/internal/fabric"
	"golapi/internal/lapi"
	"golapi/internal/mpi"
	"golapi/internal/mpl"
	"golapi/internal/sim"
	"golapi/internal/switchnet"
	"golapi/internal/tcpnet"
)

// Job is a simulated cluster of communication tasks of type T.
type Job[T interface{ Close() error }] struct {
	Eng    *sim.Engine
	Switch *switchnet.Switch
	Tasks  []T
	rt     *exec.SimRuntime
}

// Sim is a LAPI job (the common case).
type Sim = Job[*lapi.Task]

// NewJob builds an n-task simulated cluster whose tasks are produced by mk.
func NewJob[T interface{ Close() error }](n int, scfg switchnet.Config, mk func(exec.Runtime, fabric.Transport) (T, error)) (*Job[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one task, got %d", n)
	}
	eng := sim.NewEngine()
	sw, err := switchnet.New(eng, n, scfg)
	if err != nil {
		return nil, err
	}
	rt := exec.NewSimRuntime(eng)
	j := &Job[T]{Eng: eng, Switch: sw, rt: rt}
	j.Tasks = make([]T, n)
	for i := 0; i < n; i++ {
		t, err := mk(rt, sw.Endpoint(i))
		if err != nil {
			return nil, err
		}
		j.Tasks[i] = t
	}
	return j, nil
}

// NewSim builds an n-task simulated LAPI cluster.
func NewSim(n int, scfg switchnet.Config, lcfg lapi.Config) (*Sim, error) {
	return NewJob(n, scfg, func(rt exec.Runtime, tr fabric.Transport) (*lapi.Task, error) {
		return lapi.NewTask(rt, tr, lcfg)
	})
}

// NewSimDefault builds an n-task LAPI cluster with the calibrated default
// configuration (DESIGN.md §5).
func NewSimDefault(n int) (*Sim, error) {
	return NewSim(n, switchnet.DefaultConfig(), lapi.DefaultConfig())
}

// NewSimMPI builds an n-task simulated MPI cluster.
func NewSimMPI(n int, scfg switchnet.Config, mcfg mpi.Config) (*Job[*mpi.Task], error) {
	return NewJob(n, scfg, func(rt exec.Runtime, tr fabric.Transport) (*mpi.Task, error) {
		return mpi.NewTask(rt, tr, mcfg)
	})
}

// NewSimMPL builds an n-task simulated MPL cluster.
func NewSimMPL(n int, scfg switchnet.Config, mcfg mpi.Config) (*Job[*mpl.Task], error) {
	return NewJob(n, scfg, func(rt exec.Runtime, tr fabric.Transport) (*mpl.Task, error) {
		return mpl.NewTask(rt, tr, mcfg)
	})
}

// Runtime returns the shared simulation runtime.
func (j *Job[T]) Runtime() exec.Runtime { return j.rt }

// Now returns the current virtual time of the cluster.
func (j *Job[T]) Now() sim.Time { return j.Eng.Now() }

// Run executes main once per task, SPMD style, and drives the simulation to
// completion. Tasks are closed after every main has returned; as on a real
// machine, a main that exits while peers still need its services must
// synchronize first (e.g. Gfence or Barrier). Run returns the engine's
// verdict — in particular a *sim.DeadlockError if the job hangs (e.g.
// polling mode without polls, §2.1 of the paper).
func (j *Job[T]) Run(main func(ctx exec.Context, t T)) error {
	remaining := len(j.Tasks)
	for i, t := range j.Tasks {
		i, t := i, t
		j.rt.Go(fmt.Sprintf("main-%d", i), func(ctx exec.Context) {
			main(ctx, t)
			remaining--
			if remaining == 0 {
				for _, u := range j.Tasks {
					u.Close()
				}
			}
		})
	}
	return j.Eng.Run()
}

// RunWithComm is Run with a collective.Comm constructed on every rank
// before main is entered (communicator construction is itself collective,
// so it must happen inside the job).
func RunWithComm(j *Sim, ccfg collective.Config, main func(ctx exec.Context, t *lapi.Task, c *collective.Comm)) error {
	var mu sync.Mutex
	var commErr error
	if err := j.Run(func(ctx exec.Context, t *lapi.Task) {
		c, err := collective.New(ctx, t, ccfg)
		if err != nil {
			mu.Lock()
			if commErr == nil {
				commErr = err
			}
			mu.Unlock()
			return
		}
		main(ctx, t, c)
	}); err != nil {
		return err
	}
	return commErr
}

// TCPJob is a cluster of LAPI tasks over real TCP on this machine: one
// RealRuntime (serialization domain) per task, endpoints meshed over
// loopback. Cost models are zeroed — real time is spent instead.
type TCPJob struct {
	Tasks []*lapi.Task
	rts   []*exec.RealRuntime
	eps   []*tcpnet.Endpoint
}

// NewTCPLAPI builds an n-task LAPI job over local TCP.
func NewTCPLAPI(n int, cfg lapi.Config) (*TCPJob, error) {
	addrs, err := tcpnet.LocalAddrs(n)
	if err != nil {
		return nil, err
	}
	j := &TCPJob{
		Tasks: make([]*lapi.Task, n),
		rts:   make([]*exec.RealRuntime, n),
		eps:   make([]*tcpnet.Endpoint, n),
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		j.rts[i] = exec.NewRealRuntime()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep, err := tcpnet.Dial(j.rts[i], i, n, addrs, 0)
			if err != nil {
				errs[i] = err
				return
			}
			j.eps[i] = ep
			t, err := lapi.NewTask(j.rts[i], ep, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			j.Tasks[i] = t
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return j, nil
}

// Run executes main once per task, SPMD style, each on its own runtime,
// and shuts the job down when every main has returned.
func (j *TCPJob) Run(main func(ctx exec.Context, t *lapi.Task)) error {
	var wg sync.WaitGroup
	for i, t := range j.Tasks {
		i, t := i, t
		wg.Add(1)
		j.rts[i].Go(fmt.Sprintf("main-%d", i), func(ctx exec.Context) {
			defer wg.Done()
			main(ctx, t)
		})
	}
	wg.Wait()
	j.Shutdown()
	return nil
}

// N returns the number of tasks in the job.
func (j *TCPJob) N() int { return len(j.Tasks) }

// Runtime returns task i's serialization domain. Long-lived servers (the
// gateway) need it to post external work — client requests arriving off
// TCP read loops — into the task's single-threaded protocol view.
func (j *TCPJob) Runtime(i int) *exec.RealRuntime { return j.rts[i] }

// Endpoint returns task i's transport endpoint. Exposed so co-located
// servers can borrow its pooled Alloc/Release for frame buffers instead
// of growing a second pool.
func (j *TCPJob) Endpoint(i int) *tcpnet.Endpoint { return j.eps[i] }

// Shutdown closes every task and drains the endpoints. Run calls it
// automatically; callers that drive the job manually (servers that spawn
// their own activities instead of SPMD mains) must call it themselves
// once all activities have exited. Idempotent per task (Task.Close is).
func (j *TCPJob) Shutdown() {
	for i, t := range j.Tasks {
		rt, task := j.rts[i], t
		rt.Post(func() { task.Close() })
	}
	for _, ep := range j.eps {
		ep.Drain()
	}
}
