// sharded.go assembles Tier B jobs: one simulated cluster partitioned
// across several sub-engines and driven in conservative lookahead epochs
// (parallel.RunEpochs over a switchnet.NewSharded fabric). The flow of a
// run is identical to Job.Run — SPMD mains, close after the last main —
// but each shard's ranks execute on a private engine, so independent
// protocol activity on different shards can proceed on different cores.
package cluster

import (
	"fmt"
	"sync/atomic"

	"golapi/internal/exec"
	"golapi/internal/fabric"
	"golapi/internal/lapi"
	"golapi/internal/parallel"
	"golapi/internal/sim"
	"golapi/internal/switchnet"
)

// ShardedJob is a simulated cluster of communication tasks partitioned
// across several sub-engines. Virtual-time behaviour matches Job for the
// same workload and configuration (DESIGN.md §10 gives the argument); the
// partitioning only changes which core executes which rank.
type ShardedJob[T interface{ Close() error }] struct {
	Engines []*sim.Engine
	Switch  *switchnet.Switch
	Tasks   []T
	rts     []*exec.SimRuntime // one serialization domain per shard
	px      *parallel.Executor
}

// ShardedSim is a sharded LAPI job (the common case).
type ShardedSim = ShardedJob[*lapi.Task]

// NewShardedJob builds an n-task cluster split into shards partitions,
// running epochs on px's workers (nil px drives the shards serially —
// useful for determinism checks, since results do not depend on worker
// count). mk receives the task's rank so per-rank configuration (e.g. a
// private tracer per task, required for deterministic trace collection
// across shards) is possible; the runtime it receives is the rank's shard
// runtime.
func NewShardedJob[T interface{ Close() error }](px *parallel.Executor, shards, n int, scfg switchnet.Config, mk func(rank int, rt exec.Runtime, tr fabric.Transport) (T, error)) (*ShardedJob[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one task, got %d", n)
	}
	if shards < 1 {
		return nil, fmt.Errorf("cluster: need at least one shard, got %d", shards)
	}
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	sw, err := switchnet.NewSharded(engines, n, scfg)
	if err != nil {
		return nil, err
	}
	j := &ShardedJob[T]{Engines: engines, Switch: sw, px: px}
	j.rts = make([]*exec.SimRuntime, shards)
	for i := range j.rts {
		j.rts[i] = exec.NewSimRuntime(engines[i])
	}
	j.Tasks = make([]T, n)
	for i := 0; i < n; i++ {
		t, err := mk(i, j.rts[sw.ShardOf(i)], sw.Endpoint(i))
		if err != nil {
			return nil, err
		}
		j.Tasks[i] = t
	}
	return j, nil
}

// NewShardedSim builds an n-task sharded LAPI cluster.
func NewShardedSim(px *parallel.Executor, shards, n int, scfg switchnet.Config, lcfg lapi.Config) (*ShardedSim, error) {
	return NewShardedJob(px, shards, n, scfg, func(rank int, rt exec.Runtime, tr fabric.Transport) (*lapi.Task, error) {
		return lapi.NewTask(rt, tr, lcfg)
	})
}

// Run executes main once per task, SPMD style, and drives all shards in
// lookahead epochs to completion. As in Job.Run, tasks are closed after
// every main has returned (here: at the first global quiescence with all
// mains done, which is virtually the same instant — a main that exits
// while peers still need its services must synchronize first). Run
// returns the epoch runner's verdict; a hung job yields the joined
// *sim.DeadlockError of every shard that still has parked processes.
func (j *ShardedJob[T]) Run(main func(ctx exec.Context, t T)) error {
	var remaining atomic.Int64
	remaining.Store(int64(len(j.Tasks)))
	for i, t := range j.Tasks {
		i, t := i, t
		j.rts[j.Switch.ShardOf(i)].Go(fmt.Sprintf("main-%d", i), func(ctx exec.Context) {
			main(ctx, t)
			remaining.Add(-1)
		})
	}
	closed := false
	return parallel.RunEpochs(j.px, j.Engines, j.Switch.Lookahead(), parallel.Hooks{
		TakeOutbox: j.Switch.TakeOutbox,
		Barrier:    j.Switch.ResolveSpine,
		Stats:      &j.Switch.Counters,
		OnQuiesce: func() bool {
			if closed || remaining.Load() != 0 {
				return false
			}
			// All mains returned and the fabric is idle: close every task.
			// The engines are parked at the barrier, so touching task state
			// from here cannot race; Close only wakes dispatcher processes
			// (fresh events), which the next epochs drain.
			closed = true
			for _, t := range j.Tasks {
				t.Close()
			}
			return true
		},
	})
}
