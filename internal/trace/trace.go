// Package trace provides a lightweight bounded event recorder for the
// communication libraries. A Tracer can be attached to a LAPI task
// (lapi.Config.Tracer); the protocol layer records operation initiations,
// packet handling and handler invocations with their virtual timestamps,
// giving a per-task timeline for debugging protocol behaviour —
// out-of-order arrivals, handler interleavings, fence stalls.
//
// The recorder is a ring buffer: it never grows past its capacity, so it
// can stay enabled for long benchmark runs at modest memory cost.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	// At is the time of the event (virtual time under the simulator).
	At time.Duration
	// Task is the rank the event happened on.
	Task int
	// Kind classifies the event (see the Kind* constants).
	Kind string
	// Detail is free-form context ("put 4096B -> 3", "hdr-handler id=2").
	Detail string
}

// Event kinds recorded by the LAPI integration.
const (
	KindOp        = "op"        // operation initiated (put/get/amsend/rmw)
	KindPacket    = "packet"    // packet handled by the dispatcher
	KindHandler   = "handler"   // header/completion handler ran
	KindCounter   = "counter"   // counter wait satisfied
	KindFence     = "fence"     // fence entered/completed
	KindInterrupt = "interrupt" // dispatcher woken by an interrupt
	// KindCollective is recorded by the collective layer (package
	// collective): algorithm choice at operation entry and per-step
	// phase transitions of ring / recursive-doubling / tree schedules.
	KindCollective = "collective"
)

// Tracer is a bounded, concurrency-safe event recorder. The zero value is
// a disabled tracer; create usable ones with New.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	next   int
	full   bool
	seq    uint64
}

// New returns a tracer retaining the most recent capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{events: make([]Event, capacity)}
}

// Record appends an event (dropping the oldest once full).
func (t *Tracer) Record(at time.Duration, task int, kind, detail string) {
	if t == nil || t.events == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events[t.next] = Event{At: at, Task: task, Kind: kind, Detail: detail}
	t.next++
	t.seq++
	if t.next == len(t.events) {
		t.next = 0
		t.full = true
	}
}

// Recordf is Record with formatting.
func (t *Tracer) Recordf(at time.Duration, task int, kind, format string, args ...interface{}) {
	if t == nil || t.events == nil {
		return
	}
	t.Record(at, task, kind, fmt.Sprintf(format, args...))
}

// Events returns the retained events in chronological record order.
func (t *Tracer) Events() []Event {
	if t == nil || t.events == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	if t.full {
		out = append(out, t.events[t.next:]...)
	}
	out = append(out, t.events[:t.next]...)
	return out
}

// Len reports how many events have been recorded in total (including any
// that have been evicted from the ring).
func (t *Tracer) Len() uint64 {
	if t == nil || t.events == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Filter returns retained events of the given kind.
func (t *Tracer) Filter(kind string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// String renders the retained timeline, one event per line.
func (t *Tracer) String() string {
	return FormatEvents(t.Events())
}

// FormatEvents renders a timeline (e.g. a Merge result), one event per
// line in the same layout as Tracer.String.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%12v task%-3d %-10s %s\n", e.At, e.Task, e.Kind, e.Detail)
	}
	return b.String()
}

// Merge combines several timelines into one canonical trace, ordered by
// (At, Task) with each task's own record order preserved for ties (the
// sort is stable and tracers are concatenated in argument order). A task's
// events are totally ordered by the engine that runs it in both serial and
// sharded execution, so merging one tracer per rank yields a comparison
// key that is independent of how the simulation was partitioned: two
// executions are equivalent exactly when their merged traces are equal.
// This is the primitive behind the Tier B determinism tests — a sharded
// run must reproduce the serial run's merged trace byte for byte.
func Merge(tracers ...*Tracer) []Event {
	var all []Event
	for _, t := range tracers {
		all = append(all, t.Events()...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Task < all[j].Task
	})
	return all
}
