package trace_test

import (
	"strings"
	"testing"
	"time"

	"golapi/internal/cluster"
	"golapi/internal/collective"
	"golapi/internal/exec"
	"golapi/internal/lapi"
	"golapi/internal/switchnet"
	"golapi/internal/trace"
)

func TestRingBufferRetention(t *testing.T) {
	tr := trace.New(4)
	for i := 0; i < 10; i++ {
		tr.Recordf(time.Duration(i), 0, "k", "e%d", i)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		want := time.Duration(6 + i)
		if e.At != want {
			t.Errorf("event %d at %v, want %v (oldest evicted first)", i, e.At, want)
		}
	}
	if tr.Len() != 10 {
		t.Errorf("Len = %d, want 10", tr.Len())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *trace.Tracer
	tr.Record(0, 0, "k", "d") // must not panic
	tr.Recordf(0, 0, "k", "d%d", 1)
	if tr.Events() != nil || tr.Len() != 0 {
		t.Error("nil tracer returned data")
	}
	var zero trace.Tracer
	zero.Record(0, 0, "k", "d") // zero value is disabled
	if zero.Len() != 0 {
		t.Error("zero tracer recorded")
	}
}

func TestFilterAndString(t *testing.T) {
	tr := trace.New(16)
	tr.Record(time.Microsecond, 1, trace.KindOp, "put 8B -> 0")
	tr.Record(2*time.Microsecond, 1, trace.KindPacket, "type=1 from=0 52B")
	tr.Record(3*time.Microsecond, 1, trace.KindOp, "get 8B <- 0")
	ops := tr.Filter(trace.KindOp)
	if len(ops) != 2 {
		t.Fatalf("Filter(op) = %d events", len(ops))
	}
	s := tr.String()
	if !strings.Contains(s, "put 8B -> 0") || !strings.Contains(s, "task1") {
		t.Errorf("String() = %q", s)
	}
}

// TestLAPIIntegration attaches a tracer to a simulated task and checks the
// protocol layer records the expected timeline.
func TestLAPIIntegration(t *testing.T) {
	tracer := trace.New(256)
	lcfg := lapi.DefaultConfig()
	lcfg.Tracer = tracer
	c, err := cluster.NewSimDefault(2)
	if err != nil {
		t.Fatal(err)
	}
	// Only rank 0's config carries the tracer? No — config is shared, so
	// both tasks trace into the same recorder; Task field disambiguates.
	c2, err := cluster.NewSim(2, c.Switch.Config(), lcfg)
	if err != nil {
		t.Fatal(err)
	}
	err = c2.Run(func(ctx exec.Context, lt *lapi.Task) {
		buf := lt.Alloc(64)
		addrs, _ := lt.AddressInit(ctx, buf)
		h := lt.RegisterHandler(func(tk *lapi.Task, info *lapi.AmInfo) (lapi.Addr, lapi.CompletionHandler) {
			b := tk.Alloc(info.DataLen)
			return b, func(exec.Context, *lapi.Task) {}
		})
		if lt.Self() == 0 {
			lt.PutSync(ctx, 1, addrs[1], []byte("traced!!"), lapi.NoCounter)
			lt.AmsendSync(ctx, 1, h, []byte("u"), []byte("data"), lapi.NoCounter)
			lt.Fence(ctx)
		}
		lt.Gfence(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	for _, e := range tracer.Events() {
		kinds[e.Kind]++
	}
	if kinds[trace.KindOp] == 0 {
		t.Error("no operations recorded")
	}
	if kinds[trace.KindPacket] == 0 {
		t.Error("no packets recorded")
	}
	if kinds[trace.KindHandler] < 2 {
		t.Errorf("handler events = %d, want header + completion", kinds[trace.KindHandler])
	}
	if kinds[trace.KindFence] < 2 {
		t.Error("fence enter/complete not recorded")
	}
	if kinds[trace.KindInterrupt] == 0 {
		t.Error("no interrupts recorded in interrupt mode")
	}

	// Timestamps must be non-decreasing per task.
	last := map[int]time.Duration{}
	for _, e := range tracer.Events() {
		if e.At < last[e.Task] {
			t.Fatalf("timeline went backwards on task %d: %v after %v", e.Task, e.At, last[e.Task])
		}
		last[e.Task] = e.At
	}
}

// TestCollectiveIntegration attaches a tracer and checks the collective
// layer records its algorithm choices and step transitions as
// KindCollective events interleaved with the protocol-level timeline.
func TestCollectiveIntegration(t *testing.T) {
	tracer := trace.New(2048)
	lcfg := lapi.DefaultConfig()
	lcfg.Tracer = tracer
	j, err := cluster.NewSim(3, switchnet.DefaultConfig(), lcfg)
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.RunWithComm(j, collective.DefaultConfig(),
		func(ctx exec.Context, lt *lapi.Task, c *collective.Comm) {
			buf := make([]byte, 16)
			if err := c.AllreduceAlg(ctx, buf, collective.OpSumU8, collective.AlgRing); err != nil {
				t.Error(err)
				return
			}
			if err := c.Barrier(ctx); err != nil {
				t.Error(err)
				return
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	evs := tracer.Filter(trace.KindCollective)
	if len(evs) == 0 {
		t.Fatal("no collective events recorded")
	}
	var sawChoice, sawRS, sawAG, sawSync bool
	for _, e := range evs {
		switch {
		case strings.HasPrefix(e.Detail, "allreduce alg=ring"):
			sawChoice = true
		case strings.HasPrefix(e.Detail, "ring rs step"):
			sawRS = true
		case strings.HasPrefix(e.Detail, "ring ag step"):
			sawAG = true
		case strings.HasPrefix(e.Detail, "sync round"):
			sawSync = true
		}
	}
	if !sawChoice || !sawRS || !sawAG || !sawSync {
		t.Errorf("missing events: choice=%v reduce-scatter=%v allgather=%v sync=%v",
			sawChoice, sawRS, sawAG, sawSync)
	}
	// The collective layer rides on Puts, so protocol events must appear too.
	if len(tracer.Filter(trace.KindOp)) == 0 {
		t.Error("no protocol ops under the collective")
	}
}
