// Package exec abstracts the execution substrate a communication task runs
// on, so the same protocol code drives both the deterministic discrete-event
// simulator (virtual time) and real goroutines over real transports
// (wall-clock time).
//
// A Runtime serializes all activity belonging to one domain (in the
// simulator, the whole cluster; in real mode, one task): callbacks scheduled
// with After and activities spawned with Go never run concurrently with each
// other. Blocking-capable code receives a Context; only code holding a
// Context may Sleep or Wait.
package exec

import "time"

// Cond is a broadcast-only condition variable. Waiting requires a Context
// (see Context.Wait); Broadcast may be called from any serialized activity.
type Cond interface {
	Broadcast()
}

// Context is the handle held by blocking-capable activities. All methods
// must be called from the activity the context was passed to.
type Context interface {
	// Now returns the time since the runtime started.
	Now() time.Duration
	// Sleep suspends the activity for d. In the simulator this advances
	// virtual time; in real mode it wall-clock sleeps. A non-positive d
	// still acts as a scheduling point.
	Sleep(d time.Duration)
	// Wait parks the activity until c is broadcast. Callers must re-check
	// their predicate in a loop, as with sync.Cond.
	Wait(c Cond)
}

// Runtime schedules serialized activities and timers.
type Runtime interface {
	// Now returns the time since the runtime started.
	Now() time.Duration
	// NewCond returns a condition variable bound to this runtime.
	NewCond() Cond
	// After runs fn at Now()+d, serialized with all other activity.
	// fn must not block.
	After(d time.Duration, fn func())
	// Go spawns fn as a new serialized, blocking-capable activity.
	Go(name string, fn func(Context))
}
