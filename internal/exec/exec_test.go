package exec

import (
	"testing"
	"time"

	"golapi/internal/sim"
)

// runtimeContract exercises behaviour both implementations must share.
func runtimeContract(t *testing.T, rt Runtime, run func()) {
	t.Helper()

	var order []string
	done := rt.NewCond()
	finished := 0

	rt.After(0, func() { order = append(order, "after0") })
	rt.Go("sleeper", func(ctx Context) {
		ctx.Sleep(2 * time.Millisecond)
		order = append(order, "sleeper")
		finished++
		done.Broadcast()
	})
	rt.Go("waiter", func(ctx Context) {
		for finished < 1 {
			ctx.Wait(done)
		}
		order = append(order, "waiter")
		finished++
		done.Broadcast()
	})

	run()

	if len(order) != 3 {
		t.Fatalf("order = %v, want 3 entries", order)
	}
	if order[0] != "after0" || order[1] != "sleeper" || order[2] != "waiter" {
		t.Fatalf("order = %v", order)
	}
}

func TestSimRuntimeContract(t *testing.T) {
	eng := sim.NewEngine()
	rt := NewSimRuntime(eng)
	runtimeContract(t, rt, func() {
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRealRuntimeContract(t *testing.T) {
	rt := NewRealRuntime()
	runtimeContract(t, rt, rt.Drain)
}

func TestSimRuntimeVirtualTime(t *testing.T) {
	eng := sim.NewEngine()
	rt := NewSimRuntime(eng)
	var at time.Duration
	rt.Go("p", func(ctx Context) {
		ctx.Sleep(time.Hour) // virtual: must complete instantly in wall time
		at = ctx.Now()
	})
	start := time.Now()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != time.Hour {
		t.Fatalf("virtual now = %v, want 1h", at)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("virtual hour took %v wall time", wall)
	}
}

func TestRealRuntimeSerialization(t *testing.T) {
	// Activities must never run concurrently (Sleep is a legitimate yield
	// point, so we check mutual exclusion between yields, not atomicity
	// across them). Run with -race to also catch unsynchronized access.
	rt := NewRealRuntime()
	const n = 50
	inside := 0
	violations := 0
	for i := 0; i < n; i++ {
		rt.Go("crit", func(ctx Context) {
			inside++
			if inside != 1 {
				violations++
			}
			// Busy section without yields: no other activity may enter.
			for j := 0; j < 100; j++ {
				if inside != 1 {
					violations++
				}
			}
			inside--
			ctx.Sleep(time.Microsecond)
		})
	}
	rt.Drain()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
}

func TestRealRuntimePost(t *testing.T) {
	rt := NewRealRuntime()
	got := 0
	rt.Post(func() { got = 7 })
	if got != 7 {
		t.Fatal("Post did not run synchronously")
	}
}

func TestSimContextFromProc(t *testing.T) {
	eng := sim.NewEngine()
	var now time.Duration
	eng.Go("raw", func(p *sim.Proc) {
		ctx := SimContext(p)
		ctx.Sleep(5 * time.Microsecond)
		now = ctx.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if now != 5*time.Microsecond {
		t.Fatalf("now = %v", now)
	}
}
