package exec

import (
	"sync"
	"time"
)

// RealRuntime implements Runtime over wall-clock time and real goroutines.
// A single mutex serializes every activity belonging to the runtime, giving
// protocol code the same single-threaded view it has under the simulator.
// One RealRuntime backs one task (each task is its own serialization
// domain), unlike the simulator where one engine backs the whole cluster.
type RealRuntime struct {
	mu    sync.Mutex
	start time.Time
	wg    sync.WaitGroup
}

// NewRealRuntime returns a runtime whose clock starts now.
func NewRealRuntime() *RealRuntime {
	return &RealRuntime{start: time.Now()}
}

// Now implements Runtime.
func (r *RealRuntime) Now() time.Duration { return time.Since(r.start) }

// NewCond implements Runtime.
func (r *RealRuntime) NewCond() Cond {
	return &realCond{c: sync.NewCond(&r.mu)}
}

// After implements Runtime. fn runs with the runtime lock held.
func (r *RealRuntime) After(d time.Duration, fn func()) {
	r.wg.Add(1)
	time.AfterFunc(d, func() {
		defer r.wg.Done()
		r.mu.Lock()
		defer r.mu.Unlock()
		fn()
	})
}

// Post runs fn serialized as soon as possible; safe to call from goroutines
// outside the runtime (e.g. a transport read loop).
func (r *RealRuntime) Post(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

// PostPacket is Post specialized for packet delivery: it runs fn(src, data)
// serialized without forcing the caller to allocate a closure per frame.
func (r *RealRuntime) PostPacket(fn func(src int, data []byte), src int, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(src, data)
}

// PostDone runs fn(src, token) serialized — the direct-lane completion
// shape (see fabric.Transport.SetDirectDone). Like PostPacket it avoids a
// per-completion closure allocation on the transport's read loop.
func (r *RealRuntime) PostDone(fn func(src int, token uint64), src int, token uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(src, token)
}

// PostArg runs fn(arg) serialized. Like PostPacket it exists for hot paths
// that would otherwise allocate a closure per call: fn is bound once by the
// caller and arg rides in the interface word (pointer payloads do not
// allocate).
func (r *RealRuntime) PostArg(fn func(arg any), arg any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(arg)
}

// Go implements Runtime.
func (r *RealRuntime) Go(name string, fn func(Context)) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.mu.Lock()
		defer r.mu.Unlock()
		fn(&realContext{rt: r})
	}()
}

// Drain blocks until all activities spawned so far have finished. Intended
// for orderly shutdown in tools and examples.
func (r *RealRuntime) Drain() { r.wg.Wait() }

type realCond struct {
	c *sync.Cond
}

func (c *realCond) Broadcast() { c.c.Broadcast() }

type realContext struct {
	rt *RealRuntime
}

func (c *realContext) Now() time.Duration { return c.rt.Now() }

func (c *realContext) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	// Release the serialization lock while sleeping so other activities
	// make progress, mirroring how a simulated process parks.
	c.rt.mu.Unlock()
	time.Sleep(d)
	c.rt.mu.Lock()
}

func (c *realContext) Wait(cond Cond) { cond.(*realCond).c.Wait() }
