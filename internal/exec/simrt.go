package exec

import (
	"time"

	"golapi/internal/sim"
)

// SimRuntime adapts a sim.Engine to the Runtime interface. One engine backs
// the whole simulated cluster, so every task's activity is serialized by
// construction and timing is fully deterministic.
type SimRuntime struct {
	eng *sim.Engine
}

// NewSimRuntime returns a Runtime driven by eng.
func NewSimRuntime(eng *sim.Engine) *SimRuntime {
	return &SimRuntime{eng: eng}
}

// Engine returns the underlying simulation engine.
func (r *SimRuntime) Engine() *sim.Engine { return r.eng }

// Now implements Runtime.
func (r *SimRuntime) Now() time.Duration { return time.Duration(r.eng.Now()) }

// NewCond implements Runtime.
func (r *SimRuntime) NewCond() Cond { return &simCond{c: sim.NewCond(r.eng)} }

// After implements Runtime.
func (r *SimRuntime) After(d time.Duration, fn func()) { r.eng.Schedule(d, fn) }

// Go implements Runtime.
func (r *SimRuntime) Go(name string, fn func(Context)) {
	r.eng.Go(name, func(p *sim.Proc) {
		fn(&simContext{p: p})
	})
}

type simCond struct {
	c *sim.Cond
}

func (c *simCond) Broadcast() { c.c.Broadcast() }

type simContext struct {
	p *sim.Proc
}

func (c *simContext) Now() time.Duration    { return time.Duration(c.p.Now()) }
func (c *simContext) Sleep(d time.Duration) { c.p.Sleep(d) }
func (c *simContext) Wait(cond Cond)        { c.p.WaitCond(cond.(*simCond).c) }

// SimContext exposes a Context for an existing sim.Proc, for code that mixes
// raw engine processes with exec-based components (e.g. test drivers).
func SimContext(p *sim.Proc) Context { return &simContext{p: p} }
