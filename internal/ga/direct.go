package ga

// Direct-access exports for layers that build their own one-sided
// protocols on LAPI while borrowing GA's collective allocation, block
// distribution, and address exchange — the gateway (internal/gateway) is
// the first such layer. All of these are LAPI-backend-only views: the MPL
// backend keeps its storage private, so every function degrades to
// ok=false there and callers must fall back to the portable GA operations.
//
// The exposed representation is the backend's real one: array blocks and
// counter words are stored as big-endian 8-byte values in the owning
// task's LAPI heap (the Task.ReadInt64/ReadFloat64 convention), so bytes
// moved with raw LAPI Put/Get against these addresses interoperate with
// GA's own put/get/acc and with LAPI Rmw.

import "golapi/internal/lapi"

// LocalBlock returns the calling task's block of a — its patch in global
// indices and the raw storage (big-endian float64s, row-major with the
// block's column count as leading dimension). ok is false on non-LAPI
// backends or when this task owns no elements of a.
//
// The returned slice aliases the live block: writes are visible to remote
// gets immediately. Callers run serialized on the task's runtime, so
// mutating it is safe exactly where calling GA operations is.
func (a *Array) LocalBlock() (Patch, []byte, bool) {
	b, ok := a.w.b.(*lapiBackend)
	if !ok {
		return Patch{}, nil, false
	}
	in := b.info(a.handle)
	if in.local.Empty() {
		return in.local, nil, false
	}
	return in.local, b.t.MustBytes(in.base, in.local.Elems()*8), true
}

// RowSpan decomposes the row segment [col, col+count) of row into
// owner-contiguous pieces and invokes fn once per piece with the owning
// rank, the remote address of the piece's first element, the piece's
// offset (in elements) from col, and its element count. Segments within
// one owner's block are contiguous in the owner's storage, so each piece
// is one raw LAPI Put/Get. Returns false (without calling fn) on non-LAPI
// backends or if the segment lies outside the array.
func (a *Array) RowSpan(row, col, count int, fn func(owner int, addr lapi.Addr, off, elems int)) bool {
	b, ok := a.w.b.(*lapiBackend)
	if !ok {
		return false
	}
	if row < 0 || row >= a.rows || col < 0 || count <= 0 || col+count > a.cols {
		return false
	}
	for start := col; start < col+count; {
		gc := start / a.blockC
		end := min((gc+1)*a.blockC, col+count)
		owner := (row/a.blockR)*a.gridC + gc
		fn(owner, b.remoteAddr(a, owner, row, start), start-col, end-start)
		start = end
	}
	return true
}

// Location returns the rank hosting the shared counter and the remote
// address of its word (a big-endian int64, the LAPI Rmw convention), for
// callers issuing their own Rmw against it. ok is false on non-LAPI
// backends.
func (c *SharedCounter) Location() (owner int, addr lapi.Addr, ok bool) {
	if _, isLapi := c.w.b.(*lapiBackend); !isLapi {
		return 0, 0, false
	}
	return c.owner, lapi.Addr(c.loc), true
}
