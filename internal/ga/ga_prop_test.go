package ga_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
	"golapi/internal/mpi"
	"golapi/internal/mpl"
	"golapi/internal/switchnet"
)

// TestPropGAMatchesReferenceModel drives a random sequence of puts and
// accumulates from rank 0 against both GA backends AND a plain in-memory
// reference array, then compares the final contents element-by-element.
// This is the strongest correctness statement we can make about the
// protocol stacks: whatever the hybrid protocols do internally, the
// observable array must behave like ordinary memory under a single writer.
func TestPropGAMatchesReferenceModel(t *testing.T) {
	type op struct {
		acc   bool
		patch ga.Patch
		seed  int64
		alpha float64
	}
	const dim = 36

	genOps := func(seed int64) []op {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]op, 12)
		for i := range ops {
			r0, c0 := rng.Intn(dim), rng.Intn(dim)
			r1, c1 := r0+rng.Intn(dim-r0), c0+rng.Intn(dim-c0)
			ops[i] = op{
				acc:   rng.Intn(2) == 1,
				patch: ga.Patch{RLo: r0, RHi: r1, CLo: c0, CHi: c1},
				seed:  rng.Int63(),
				alpha: float64(rng.Intn(5)) - 2,
			}
		}
		return ops
	}

	reference := func(ops []op) []float64 {
		ref := make([]float64, dim*dim)
		for _, o := range ops {
			rng := rand.New(rand.NewSource(o.seed))
			for i := o.patch.RLo; i <= o.patch.RHi; i++ {
				for j := o.patch.CLo; j <= o.patch.CHi; j++ {
					v := float64(rng.Intn(1000))
					if o.acc {
						ref[i*dim+j] += o.alpha * v
					} else {
						ref[i*dim+j] = v
					}
				}
			}
		}
		return ref
	}

	applyGA := func(ctx exec.Context, w *ga.World, ops []op) []float64 {
		a, err := w.Create(ctx, dim, dim)
		if err != nil {
			t.Error(err)
			return nil
		}
		if w.Self() == 0 {
			for _, o := range ops {
				rng := rand.New(rand.NewSource(o.seed))
				buf := make([]float64, o.patch.Elems())
				for k := range buf {
					buf[k] = float64(rng.Intn(1000))
				}
				var err error
				if o.acc {
					err = a.Acc(ctx, o.patch, buf, o.patch.Cols(), o.alpha)
				} else {
					// Order matters for overlapping puts from one
					// writer: fence between them.
					err = a.Put(ctx, o.patch, buf, o.patch.Cols())
					if err == nil {
						w.Fence(ctx)
					}
				}
				if err != nil {
					t.Error(err)
					return nil
				}
			}
		}
		w.Sync(ctx)
		var out []float64
		if w.Self() == 1 {
			full := ga.Patch{RLo: 0, RHi: dim - 1, CLo: 0, CHi: dim - 1}
			out = make([]float64, full.Elems())
			if err := a.Get(ctx, full, out, dim); err != nil {
				t.Error(err)
			}
		}
		w.Sync(ctx)
		return out
	}

	check := func(seed int64) bool {
		ops := genOps(seed)
		want := reference(ops)

		for _, backend := range []string{"LAPI", "LAPI-vec", "MPL"} {
			var got []float64
			switch backend {
			case "LAPI", "LAPI-vec":
				c, err := cluster.NewSimDefault(4)
				if err != nil {
					t.Fatal(err)
				}
				cfg := ga.DefaultConfig()
				cfg.UseVectorOps = backend == "LAPI-vec"
				err = c.Run(func(ctx exec.Context, lt *lapi.Task) {
					w, err := ga.NewLAPIWorld(ctx, lt, cfg)
					if err != nil {
						t.Error(err)
						return
					}
					if o := applyGA(ctx, w, ops); o != nil {
						got = o
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			case "MPL":
				mcfg := mpi.DefaultConfig()
				mcfg.EagerLimit = mcfg.MaxEagerLimit
				c, err := cluster.NewSimMPL(4, switchnet.DefaultConfig(), mcfg)
				if err != nil {
					t.Fatal(err)
				}
				err = c.Run(func(ctx exec.Context, mt *mpl.Task) {
					w, err := ga.NewMPLWorld(ctx, mt, ga.DefaultConfig())
					if err != nil {
						t.Error(err)
						return
					}
					if o := applyGA(ctx, w, ops); o != nil {
						got = o
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(got) != len(want) {
				t.Errorf("seed %d backend %s: no result", seed, backend)
				return false
			}
			for k := range want {
				if got[k] != want[k] {
					t.Errorf("seed %d backend %s: element (%d,%d) = %g, want %g",
						seed, backend, k/dim, k%dim, got[k], want[k])
					return false
				}
			}
		}
		return true
	}

	if err := quick.Check(func(seed int64) bool { return check(seed) }, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
