package ga

import (
	"encoding/binary"
	"math"
)

// Wire and arena representation of array elements: big-endian float64, the
// same encoding lapi.WriteFloat64 uses, so direct Put/Get and AM protocols
// interoperate.

func putF64(b []byte, v float64) {
	binary.BigEndian.PutUint64(b, math.Float64bits(v))
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// packPatch encodes rows x cols elements from buf (leading dimension ld,
// starting at off) into dst, row-major and dense. dst must hold
// rows*cols*8 bytes.
func packPatch(dst []byte, buf []float64, ld, off, rows, cols int) {
	k := 0
	for r := 0; r < rows; r++ {
		base := off + r*ld
		for c := 0; c < cols; c++ {
			putF64(dst[k:], buf[base+c])
			k += 8
		}
	}
}

// unpackPatch decodes rows x cols dense elements from src into buf
// (leading dimension ld, starting at off).
func unpackPatch(buf []float64, ld, off int, src []byte, rows, cols int) {
	k := 0
	for r := 0; r < rows; r++ {
		base := off + r*ld
		for c := 0; c < cols; c++ {
			buf[base+c] = getF64(src[k:])
			k += 8
		}
	}
}

// packRow encodes one dense row of cols elements.
func packRow(dst []byte, buf []float64, off, cols int) {
	for c := 0; c < cols; c++ {
		putF64(dst[c*8:], buf[off+c])
	}
}

// unpackRow decodes one dense row.
func unpackRow(buf []float64, off int, src []byte, cols int) {
	for c := 0; c < cols; c++ {
		buf[off+c] = getF64(src[c*8:])
	}
}

// blockIndex returns the byte offset of global element (i, j) within the
// owner's local block storage.
func blockIndex(local Patch, i, j int) int {
	return ((i-local.RLo)*local.Cols() + (j - local.CLo)) * 8
}

// storeInto copies a dense row-major rows x cols source (src bytes) into a
// local block byte slice at subpatch sub.
func storeInto(block []byte, local, sub Patch, src []byte) {
	for r := 0; r < sub.Rows(); r++ {
		dst := blockIndex(local, sub.RLo+r, sub.CLo)
		copy(block[dst:dst+sub.Cols()*8], src[r*sub.Cols()*8:])
	}
}

// loadFrom copies subpatch sub of a local block into a dense row-major
// destination.
func loadFrom(dst []byte, block []byte, local, sub Patch) {
	for r := 0; r < sub.Rows(); r++ {
		src := blockIndex(local, sub.RLo+r, sub.CLo)
		copy(dst[r*sub.Cols()*8:], block[src:src+sub.Cols()*8])
	}
}

// accumulateInto applies block[e] += alpha*src[e] elementwise over sub.
func accumulateInto(block []byte, local, sub Patch, src []byte, alpha float64) {
	for r := 0; r < sub.Rows(); r++ {
		dst := blockIndex(local, sub.RLo+r, sub.CLo)
		for c := 0; c < sub.Cols(); c++ {
			cur := getF64(block[dst+c*8:])
			add := getF64(src[(r*sub.Cols()+c)*8:])
			putF64(block[dst+c*8:], cur+alpha*add)
		}
	}
}
