package ga_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"golapi/internal/exec"
	"golapi/internal/ga"
)

// TestPropScatterGatherMatchesReference: random subscript sets (with
// duplicates across ranks' disjoint value spaces avoided by a per-rank
// region) scatter and gather back exactly, on both backends.
func TestPropScatterGatherMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		ok := true
		for _, be := range backends {
			be.run(t, 4, func(ctx exec.Context, w *ga.World) {
				const dim = 32
				a, _ := w.Create(ctx, dim, dim)
				a.Zero(ctx)

				// Rank 0 scatters to unique random cells.
				rng := rand.New(rand.NewSource(seed))
				n := rng.Intn(30) + 1
				used := map[[2]int]bool{}
				var rows, cols []int
				var vals []float64
				for len(rows) < n {
					i, j := rng.Intn(dim), rng.Intn(dim)
					if used[[2]int{i, j}] {
						continue
					}
					used[[2]int{i, j}] = true
					rows = append(rows, i)
					cols = append(cols, j)
					vals = append(vals, float64(rng.Intn(1_000_000)))
				}
				if w.Self() == 0 {
					if err := a.Scatter(ctx, rows, cols, vals); err != nil {
						t.Error(err)
						ok = false
					}
				}
				w.Sync(ctx)
				if w.Self() == 2 {
					out := make([]float64, n)
					if err := a.Gather(ctx, rows, cols, out); err != nil {
						t.Error(err)
						ok = false
					}
					for k := range out {
						if out[k] != vals[k] {
							t.Errorf("gather[%d] = %g, want %g", k, out[k], vals[k])
							ok = false
							break
						}
					}
					// Untouched cells must still be zero.
					full := make([]float64, dim*dim)
					a.Get(ctx, ga.Patch{RLo: 0, RHi: dim - 1, CLo: 0, CHi: dim - 1}, full, dim)
					sum := 0.0
					for _, v := range full {
						sum += v
					}
					want := 0.0
					for _, v := range vals {
						want += v
					}
					if sum != want {
						t.Errorf("array sum %g, want %g (scatter touched extra cells)", sum, want)
						ok = false
					}
				}
				w.Sync(ctx)
			})
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
