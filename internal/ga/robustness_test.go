package ga_test

import (
	"testing"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
	"golapi/internal/mpi"
	"golapi/internal/mpl"
	"golapi/internal/switchnet"
)

// lossyConfig injects drops and reordering at the fabric.
func lossyConfig() switchnet.Config {
	scfg := switchnet.DefaultConfig()
	scfg.DropEvery = 9
	scfg.ReorderEvery = 4
	scfg.ReorderDelayPackets = 3
	return scfg
}

// TestGACorrectUnderPacketLossAndReorder: the full GA stack on a hostile
// fabric — retransmission, out-of-order reassembly and in-order matching
// must compose into exactly-once application-level semantics.
func TestGACorrectUnderPacketLossAndReorder(t *testing.T) {
	runLossy := map[string]func(t *testing.T, main func(ctx exec.Context, w *ga.World)){
		"LAPI": func(t *testing.T, main func(ctx exec.Context, w *ga.World)) {
			c, err := cluster.NewSim(4, lossyConfig(), lapi.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(func(ctx exec.Context, lt *lapi.Task) {
				w, err := ga.NewLAPIWorld(ctx, lt, ga.DefaultConfig())
				if err != nil {
					t.Error(err)
					return
				}
				main(ctx, w)
			}); err != nil {
				t.Fatal(err)
			}
		},
		"MPL": func(t *testing.T, main func(ctx exec.Context, w *ga.World)) {
			mcfg := mpi.DefaultConfig()
			mcfg.EagerLimit = mcfg.MaxEagerLimit
			c, err := cluster.NewSimMPL(4, lossyConfig(), mcfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(func(ctx exec.Context, mt *mpl.Task) {
				w, err := ga.NewMPLWorld(ctx, mt, ga.DefaultConfig())
				if err != nil {
					t.Error(err)
					return
				}
				main(ctx, w)
			}); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, run := range runLossy {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			run(t, func(ctx exec.Context, w *ga.World) {
				a, _ := w.Create(ctx, 50, 50)
				p := ga.Patch{RLo: 0, RHi: 49, CLo: 0, CHi: 49}
				ones := make([]float64, p.Elems())
				for k := range ones {
					ones[k] = 1
				}
				// Concurrent accumulates from everyone, twice.
				a.Acc(ctx, p, ones, p.Cols(), 1)
				a.Acc(ctx, p, ones, p.Cols(), 2)
				w.Sync(ctx)
				if w.Self() == 2 {
					got := make([]float64, p.Elems())
					a.Get(ctx, p, got, p.Cols())
					want := 3 * float64(w.N())
					for k := range got {
						if got[k] != want {
							t.Errorf("element %d = %g, want %g (loss broke exactly-once)", k, got[k], want)
							return
						}
					}
				}
				w.Sync(ctx)
			})
		})
	}
}

// TestGAContentionManyOutstanding reproduces §5.3.1's flow-control concern:
// "the rate of data arrival can be higher than the rate at which the data
// is consumed ... The model does not impose a limit on the number of
// outstanding store operations". Every rank floods rank 0's block with
// many outstanding accumulates before any fence.
func TestGAContentionManyOutstanding(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 8, 8) // entirely hosted by the 2x2 grid's corner blocks
		target := ga.Patch{RLo: 0, RHi: 3, CLo: 0, CHi: 3}
		ones := make([]float64, target.Elems())
		for k := range ones {
			ones[k] = 1
		}
		const flood = 50
		for i := 0; i < flood; i++ {
			if err := a.Acc(ctx, target, ones, target.Cols(), 1); err != nil {
				t.Error(err)
				return
			}
		}
		w.Sync(ctx)
		if w.Self() == 0 {
			got := make([]float64, target.Elems())
			a.Get(ctx, target, got, target.Cols())
			want := float64(flood * w.N())
			for k := range got {
				if got[k] != want {
					t.Errorf("element %d = %g, want %g", k, got[k], want)
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

// TestGAOverTCP runs the LAPI-backed GA stack over real sockets (zero cost
// models): a put/get/acc/readinc workout with actual goroutine concurrency.
func TestGAOverTCP(t *testing.T) {
	j, err := cluster.NewTCPLAPI(3, lapi.ZeroCost())
	if err != nil {
		t.Fatal(err)
	}
	gcfg := ga.Config{
		// Real time: no modelled costs, generous thresholds.
		AMChunkBytes:      8192,
		DirectSwitchBytes: 512 * 1024,
		MaxRequestBytes:   1 << 20,
	}
	err = j.Run(func(ctx exec.Context, lt *lapi.Task) {
		w, err := ga.NewLAPIWorld(ctx, lt, gcfg)
		if err != nil {
			t.Error(err)
			return
		}
		a, err := w.Create(ctx, 30, 30)
		if err != nil {
			t.Error(err)
			return
		}
		cnt, err := w.CreateCounter(ctx)
		if err != nil {
			t.Error(err)
			return
		}

		// Dynamic work distribution over real TCP.
		total := 0
		for {
			tk, err := cnt.ReadInc(ctx, 1)
			if err != nil {
				t.Error(err)
				return
			}
			if tk >= 9 {
				break
			}
			bi, bj := int(tk)/3, int(tk)%3
			p := ga.Patch{RLo: bi * 10, RHi: bi*10 + 9, CLo: bj * 10, CHi: bj*10 + 9}
			buf := make([]float64, p.Elems())
			for k := range buf {
				buf[k] = float64(tk)
			}
			if err := a.Put(ctx, p, buf, p.Cols()); err != nil {
				t.Error(err)
				return
			}
			total++
		}
		w.Sync(ctx)
		if w.Self() == 0 {
			full := ga.Patch{RLo: 0, RHi: 29, CLo: 0, CHi: 29}
			got := make([]float64, full.Elems())
			if err := a.Get(ctx, full, got, full.Cols()); err != nil {
				t.Error(err)
			}
			for i := 0; i < 30; i++ {
				for jj := 0; jj < 30; jj++ {
					want := float64((i/10)*3 + jj/10)
					if got[i*30+jj] != want {
						t.Errorf("(%d,%d) = %g, want %g", i, jj, got[i*30+jj], want)
						return
					}
				}
			}
		}
		w.Sync(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
}
