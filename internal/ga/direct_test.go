package ga_test

// Tests for the direct-access exports (direct.go): the addresses and raw
// bytes they expose must agree with the portable GA operations, because
// the gateway moves data with raw LAPI Put/Get/Rmw against them.

import (
	"encoding/binary"
	"math"
	"testing"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
)

// runLAPIDirect runs main on a simulated LAPI cluster, handing each rank
// both the GA world and the underlying LAPI task so tests can issue raw
// one-sided ops against addresses reported by the direct exports.
func runLAPIDirect(t *testing.T, n int, main func(ctx exec.Context, w *ga.World, lt *lapi.Task)) {
	t.Helper()
	c, err := cluster.NewSimDefault(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(ctx exec.Context, lt *lapi.Task) {
		w, err := ga.NewLAPIWorld(ctx, lt, ga.DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		main(ctx, w, lt)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalBlockMatchesDistribution(t *testing.T) {
	runLAPIDirect(t, 4, func(ctx exec.Context, w *ga.World, lt *lapi.Task) {
		a, err := w.Create(ctx, 37, 53) // ragged on a 2x2 grid
		if err != nil {
			t.Error(err)
			return
		}
		// Rank 0 fills the whole array with f(i,j) = 1000i + j.
		if w.Self() == 0 {
			rows, cols := a.Dims()
			buf := make([]float64, rows*cols)
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					buf[i*cols+j] = float64(1000*i + j)
				}
			}
			p := ga.Patch{RLo: 0, RHi: rows - 1, CLo: 0, CHi: cols - 1}
			if err := a.Put(ctx, p, buf, cols); err != nil {
				t.Error(err)
				return
			}
		}
		w.Sync(ctx)

		local, block, ok := a.LocalBlock()
		if !ok {
			t.Errorf("rank %d: LocalBlock not available on LAPI backend", w.Self())
			return
		}
		if got, want := local, a.Distribution(w.Self()); got != want {
			t.Errorf("rank %d: LocalBlock patch %v != Distribution %v", w.Self(), got, want)
		}
		if len(block) != local.Elems()*8 {
			t.Errorf("rank %d: block has %d bytes, want %d", w.Self(), len(block), local.Elems()*8)
			return
		}
		// The raw bytes must be the block's values, big-endian, row-major
		// with the block's column count as leading dimension.
		for i := local.RLo; i <= local.RHi; i++ {
			for j := local.CLo; j <= local.CHi; j++ {
				off := ((i-local.RLo)*local.Cols() + (j - local.CLo)) * 8
				got := math.Float64frombits(binary.BigEndian.Uint64(block[off:]))
				if want := float64(1000*i + j); got != want {
					t.Errorf("rank %d: block[%d,%d] = %v, want %v", w.Self(), i, j, got, want)
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestRowSpanAddressesAgreeWithGet(t *testing.T) {
	runLAPIDirect(t, 4, func(ctx exec.Context, w *ga.World, lt *lapi.Task) {
		a, err := w.Create(ctx, 19, 41)
		if err != nil {
			t.Error(err)
			return
		}
		if w.Self() == 0 {
			rows, cols := a.Dims()
			buf := make([]float64, rows*cols)
			for i := range buf {
				buf[i] = float64(i) * 0.5
			}
			p := ga.Patch{RLo: 0, RHi: rows - 1, CLo: 0, CHi: cols - 1}
			if err := a.Put(ctx, p, buf, cols); err != nil {
				t.Error(err)
				return
			}
		}
		w.Sync(ctx)

		if w.Self() == 0 {
			_, cols := a.Dims()
			// Segments chosen to cross the column-block boundary of a 2x2
			// grid on 41 columns (blockC=21), plus edge cases.
			cases := []struct{ row, col, count int }{
				{0, 0, cols}, // full row, both owners
				{18, 20, 2},  // straddles the block boundary
				{7, 21, 1},   // single element, right block
				{12, 0, 21},  // exactly the left block
				{3, 40, 1},   // last column
				{5, 19, 22},  // boundary to end of row
			}
			for _, tc := range cases {
				want := make([]float64, tc.count)
				p := ga.Patch{RLo: tc.row, RHi: tc.row, CLo: tc.col, CHi: tc.col + tc.count - 1}
				if err := a.Get(ctx, p, want, tc.count); err != nil {
					t.Error(err)
					return
				}
				got := make([]float64, tc.count)
				covered := 0
				okSpan := a.RowSpan(tc.row, tc.col, tc.count, func(owner int, addr lapi.Addr, off, elems int) {
					if wantOwner := a.Owner(tc.row, tc.col+off); owner != wantOwner {
						t.Errorf("RowSpan(%d,%d,%d): piece at off %d owned by %d, want %d",
							tc.row, tc.col, tc.count, off, owner, wantOwner)
					}
					if off != covered {
						t.Errorf("RowSpan(%d,%d,%d): piece offset %d, expected contiguous %d",
							tc.row, tc.col, tc.count, off, covered)
					}
					covered = off + elems
					raw := make([]byte, elems*8)
					if err := lt.GetSync(ctx, owner, addr, raw, lapi.NoCounter); err != nil {
						t.Error(err)
						return
					}
					for k := 0; k < elems; k++ {
						got[off+k] = math.Float64frombits(binary.BigEndian.Uint64(raw[k*8:]))
					}
				})
				if !okSpan {
					t.Errorf("RowSpan(%d,%d,%d) rejected a valid segment", tc.row, tc.col, tc.count)
					continue
				}
				if covered != tc.count {
					t.Errorf("RowSpan(%d,%d,%d) covered %d elements, want %d",
						tc.row, tc.col, tc.count, covered, tc.count)
					continue
				}
				for k := range want {
					if got[k] != want[k] {
						t.Errorf("RowSpan(%d,%d,%d): element %d = %v via raw Get, %v via ga.Get",
							tc.row, tc.col, tc.count, k, got[k], want[k])
						break
					}
				}
			}
			// Out-of-range segments must be rejected without calling fn.
			for _, bad := range []struct{ row, col, count int }{
				{-1, 0, 1}, {19, 0, 1}, {0, -1, 2}, {0, 40, 2}, {0, 0, 0},
			} {
				if a.RowSpan(bad.row, bad.col, bad.count, func(int, lapi.Addr, int, int) {
					t.Errorf("RowSpan(%d,%d,%d) called fn on invalid segment", bad.row, bad.col, bad.count)
				}) {
					t.Errorf("RowSpan(%d,%d,%d) accepted an invalid segment", bad.row, bad.col, bad.count)
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestCounterLocationInteroperatesWithRmw(t *testing.T) {
	runLAPIDirect(t, 3, func(ctx exec.Context, w *ga.World, lt *lapi.Task) {
		c, err := w.CreateCounter(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		owner, addr, ok := c.Location()
		if !ok {
			t.Errorf("rank %d: Location not available on LAPI backend", w.Self())
			return
		}
		// Rank 0 bumps the counter by 100 with a raw FetchAndAdd against the
		// reported address; everyone else waits, then a portable ReadInc must
		// observe the raw increment.
		if w.Self() == 0 {
			prev, err := lt.RmwSync(ctx, lapi.RmwFetchAndAdd, owner, addr, 100, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if prev != 0 {
				t.Errorf("raw FetchAndAdd saw initial value %d, want 0", prev)
			}
		}
		w.Sync(ctx)
		got, err := c.ReadInc(ctx, 1)
		if err != nil {
			t.Error(err)
			return
		}
		if got < 100 || got > 100+int64(w.N())-1 {
			t.Errorf("rank %d: ReadInc after raw add returned %d, want in [100,%d]",
				w.Self(), got, 100+w.N()-1)
		}
		w.Sync(ctx)
	})
}

func TestDirectExportsUnavailableOnMPL(t *testing.T) {
	runMPLWorld(t, 2, func(ctx exec.Context, w *ga.World) {
		a, err := w.Create(ctx, 8, 8)
		if err != nil {
			t.Error(err)
			return
		}
		if _, _, ok := a.LocalBlock(); ok {
			t.Error("LocalBlock reported ok on MPL backend")
		}
		if a.RowSpan(0, 0, 8, func(int, lapi.Addr, int, int) {
			t.Error("RowSpan called fn on MPL backend")
		}) {
			t.Error("RowSpan reported ok on MPL backend")
		}
		c, err := w.CreateCounter(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		if _, _, ok := c.Location(); ok {
			t.Error("Location reported ok on MPL backend")
		}
		w.Sync(ctx)
	})
}
