package ga

import (
	"fmt"
	"math"

	"golapi/internal/exec"
)

// Whole-array and collective operations. The GA applications the paper
// cites (§5.1, §5.4: SCF, DFT, MP-2) use these alongside put/get/acc:
// zeroing and duplicating work arrays, elementwise fills and copies, dot
// products and global reductions. They are built entirely on the one-sided
// primitives plus Sync, so they work identically on both backends.

// Zero sets every element of the array to zero. Collective.
func (a *Array) Zero(ctx exec.Context) error {
	return a.Fill(ctx, 0)
}

// Fill sets every element to v. Collective: each task fills its own block
// (owner-computes), then all synchronize.
func (a *Array) Fill(ctx exec.Context, v float64) error {
	local := a.Distribution(a.w.Self())
	if !local.Empty() {
		for i := local.RLo; i <= local.RHi; i++ {
			for j := local.CLo; j <= local.CHi; j++ {
				a.w.b.localWrite(a, i, j, v)
			}
		}
		// Owner-computes cost: one store sweep over the block.
		if c := a.w.cfg.copyCost(local.Elems() * 8); c > 0 {
			ctx.Sleep(c)
		}
	}
	return a.w.Sync(ctx)
}

// CopyFrom copies src into a (same dimensions required). Collective:
// owner-computes when distributions align, which they do for arrays
// created with identical shapes on the same world.
func (a *Array) CopyFrom(ctx exec.Context, src *Array) error {
	if src.w != a.w {
		return fmt.Errorf("ga: CopyFrom across worlds")
	}
	if src.rows != a.rows || src.cols != a.cols {
		return fmt.Errorf("ga: CopyFrom %dx%d from %dx%d", a.rows, a.cols, src.rows, src.cols)
	}
	local := a.Distribution(a.w.Self())
	if !local.Empty() {
		for i := local.RLo; i <= local.RHi; i++ {
			for j := local.CLo; j <= local.CHi; j++ {
				a.w.b.localWrite(a, i, j, src.w.b.localRead(src, i, j))
			}
		}
		if c := a.w.cfg.copyCost(2 * local.Elems() * 8); c > 0 {
			ctx.Sleep(c)
		}
	}
	return a.w.Sync(ctx)
}

// Scale multiplies every element by alpha. Collective.
func (a *Array) Scale(ctx exec.Context, alpha float64) error {
	local := a.Distribution(a.w.Self())
	if !local.Empty() {
		for i := local.RLo; i <= local.RHi; i++ {
			for j := local.CLo; j <= local.CHi; j++ {
				a.w.b.localWrite(a, i, j, alpha*a.w.b.localRead(a, i, j))
			}
		}
		if c := a.w.cfg.copyCost(2 * local.Elems() * 8); c > 0 {
			ctx.Sleep(c)
		}
	}
	return a.w.Sync(ctx)
}

// Duplicate collectively creates a new array with the same shape and
// contents as a (GA_Duplicate + copy).
func (a *Array) Duplicate(ctx exec.Context) (*Array, error) {
	dup, err := a.w.Create(ctx, a.rows, a.cols)
	if err != nil {
		return nil, err
	}
	if err := dup.CopyFrom(ctx, a); err != nil {
		return nil, err
	}
	return dup, nil
}

// Dot returns the global dot product <a, b>. Collective: each task reduces
// its own block, then the partials are summed with ReduceSum. Both arrays
// must have the same shape.
func (a *Array) Dot(ctx exec.Context, b *Array) (float64, error) {
	if b.w != a.w {
		return 0, fmt.Errorf("ga: Dot across worlds")
	}
	if a.rows != b.rows || a.cols != b.cols {
		return 0, fmt.Errorf("ga: Dot %dx%d with %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	local := a.Distribution(a.w.Self())
	partial := 0.0
	if !local.Empty() {
		for i := local.RLo; i <= local.RHi; i++ {
			for j := local.CLo; j <= local.CHi; j++ {
				partial += a.w.b.localRead(a, i, j) * b.w.b.localRead(b, i, j)
			}
		}
		if c := a.w.cfg.copyCost(2 * local.Elems() * 8); c > 0 {
			ctx.Sleep(c)
		}
	}
	return a.w.ReduceSum(ctx, partial)
}

// ReduceSum is GA's global floating-point sum (the GOP/dgop of the
// original toolkit): every task contributes x and receives the total.
// Collective. Implemented entirely on the public one-sided operations — a
// shared 1 x N staging array — so it needs nothing from the backends.
func (w *World) ReduceSum(ctx exec.Context, x float64) (float64, error) {
	stage, err := w.stagingArray(ctx)
	if err != nil {
		return 0, err
	}
	p := ga1x1(w.Self())
	if err := stage.Put(ctx, p, []float64{x}, 1); err != nil {
		return 0, err
	}
	if err := w.Sync(ctx); err != nil {
		return 0, err
	}
	all := make([]float64, w.N())
	if err := stage.Get(ctx, Patch{RLo: 0, RHi: 0, CLo: 0, CHi: w.N() - 1}, all, w.N()); err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range all {
		sum += v
	}
	// A second sync so the staging row can be reused by the next
	// collective without racing stragglers' gets.
	if err := w.Sync(ctx); err != nil {
		return 0, err
	}
	return sum, nil
}

// ReduceMax is the max-reduction sibling of ReduceSum.
func (w *World) ReduceMax(ctx exec.Context, x float64) (float64, error) {
	stage, err := w.stagingArray(ctx)
	if err != nil {
		return 0, err
	}
	p := ga1x1(w.Self())
	if err := stage.Put(ctx, p, []float64{x}, 1); err != nil {
		return 0, err
	}
	if err := w.Sync(ctx); err != nil {
		return 0, err
	}
	all := make([]float64, w.N())
	if err := stage.Get(ctx, Patch{RLo: 0, RHi: 0, CLo: 0, CHi: w.N() - 1}, all, w.N()); err != nil {
		return 0, err
	}
	m := math.Inf(-1)
	for _, v := range all {
		m = math.Max(m, v)
	}
	if err := w.Sync(ctx); err != nil {
		return 0, err
	}
	return m, nil
}

func ga1x1(col int) Patch { return Patch{RLo: 0, RHi: 0, CLo: col, CHi: col} }

// stagingArray lazily creates the world's 1 x N reduction row (collective
// on first use; every task must reach its first reduction together, which
// collectives guarantee by definition).
func (w *World) stagingArray(ctx exec.Context) (*Array, error) {
	if w.stage == nil {
		a, err := w.Create(ctx, 1, w.N())
		if err != nil {
			return nil, err
		}
		w.stage = a
	}
	return w.stage, nil
}
