package ga_test

import (
	"math"
	"testing"

	"golapi/internal/exec"
	"golapi/internal/ga"
)

func TestFillZeroScale(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 25, 25)
		if err := a.Fill(ctx, 3.5); err != nil {
			t.Error(err)
			return
		}
		if err := a.Scale(ctx, 2); err != nil {
			t.Error(err)
			return
		}
		if w.Self() == 1 {
			p := ga.Patch{RLo: 0, RHi: 24, CLo: 0, CHi: 24}
			got := make([]float64, p.Elems())
			a.Get(ctx, p, got, p.Cols())
			for k, v := range got {
				if v != 7 {
					t.Errorf("element %d = %g after Fill+Scale", k, v)
					return
				}
			}
		}
		w.Sync(ctx)
		if err := a.Zero(ctx); err != nil {
			t.Error(err)
			return
		}
		if w.Self() == 2 {
			if v := a.At(a.Distribution(2).RLo, a.Distribution(2).CLo); v != 0 {
				t.Errorf("Zero left %g", v)
			}
		}
		w.Sync(ctx)
	})
}

func TestCopyFrom(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 16, 16)
		b, _ := w.Create(ctx, 16, 16)
		d := a.Distribution(w.Self())
		for i := d.RLo; i <= d.RHi; i++ {
			for j := d.CLo; j <= d.CHi; j++ {
				a.SetLocal(i, j, float64(i*100+j))
			}
		}
		w.Sync(ctx)
		if err := b.CopyFrom(ctx, a); err != nil {
			t.Error(err)
			return
		}
		if w.Self() == 3 {
			p := ga.Patch{RLo: 0, RHi: 15, CLo: 0, CHi: 15}
			got := make([]float64, p.Elems())
			b.Get(ctx, p, got, 16)
			for i := 0; i < 16; i++ {
				for j := 0; j < 16; j++ {
					if got[i*16+j] != float64(i*100+j) {
						t.Errorf("copy (%d,%d) = %g", i, j, got[i*16+j])
						return
					}
				}
			}
		}
		w.Sync(ctx)
		// Shape mismatch must be rejected.
		c, _ := w.Create(ctx, 8, 8)
		if err := c.CopyFrom(ctx, a); err == nil {
			t.Error("shape-mismatched copy accepted")
		}
		// CopyFrom with an error return doesn't sync; realign manually.
		w.Sync(ctx)
	})
}

func TestDotProduct(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 12, 12)
		b, _ := w.Create(ctx, 12, 12)
		a.Fill(ctx, 2)
		b.Fill(ctx, 3)
		got, err := a.Dot(ctx, b)
		if err != nil {
			t.Error(err)
			return
		}
		want := 2.0 * 3.0 * 144
		if got != want {
			t.Errorf("rank %d: dot = %g, want %g", w.Self(), got, want)
		}
		w.Sync(ctx)
	})
}

func TestReduceSumAndMax(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		x := float64(w.Self() + 1) // 1..4
		sum, err := w.ReduceSum(ctx, x)
		if err != nil {
			t.Error(err)
			return
		}
		if sum != 10 {
			t.Errorf("rank %d: sum = %g, want 10", w.Self(), sum)
		}
		m, err := w.ReduceMax(ctx, -x)
		if err != nil {
			t.Error(err)
			return
		}
		if m != -1 {
			t.Errorf("rank %d: max = %g, want -1", w.Self(), m)
		}
		// Repeated reductions must not interfere (staging row reuse).
		for i := 0; i < 3; i++ {
			s, _ := w.ReduceSum(ctx, 1)
			if s != 4 {
				t.Errorf("iteration %d: sum = %g", i, s)
			}
		}
		w.Sync(ctx)
	})
}

func TestDotOrthogonal(t *testing.T) {
	// A numerically interesting case: dot of sin/cos-patterned arrays.
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 10, 10)
		b, _ := w.Create(ctx, 10, 10)
		d := a.Distribution(w.Self())
		for i := d.RLo; i <= d.RHi; i++ {
			for j := d.CLo; j <= d.CHi; j++ {
				a.SetLocal(i, j, math.Sin(float64(i*10+j)))
				b.SetLocal(i, j, math.Cos(float64(i*10+j)))
			}
		}
		w.Sync(ctx)
		got, err := a.Dot(ctx, b)
		if err != nil {
			t.Error(err)
			return
		}
		want := 0.0
		for k := 0; k < 100; k++ {
			want += math.Sin(float64(k)) * math.Cos(float64(k))
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("dot = %g, want %g", got, want)
		}
		w.Sync(ctx)
	})
}

func TestDuplicate(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 10, 10)
		a.Fill(ctx, 6.25)
		dup, err := a.Duplicate(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		// Mutating the duplicate must not touch the original.
		dup.Scale(ctx, 2)
		d1, _ := a.Dot(ctx, a)
		d2, _ := dup.Dot(ctx, dup)
		if d1 != 6.25*6.25*100 || d2 != 4*d1 {
			t.Errorf("dots = %g, %g", d1, d2)
		}
		w.Sync(ctx)
	})
}
