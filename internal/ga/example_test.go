package ga_test

import (
	"fmt"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
)

// Example shows the Global Arrays shared-memory style: one task puts a
// section of a distributed array, another gets it — no receives anywhere.
func Example() {
	c, _ := cluster.NewSimDefault(4)
	c.Run(func(ctx exec.Context, t *lapi.Task) {
		w, _ := ga.NewLAPIWorld(ctx, t, ga.DefaultConfig())
		a, _ := w.Create(ctx, 8, 8)
		p := ga.Patch{RLo: 2, RHi: 3, CLo: 2, CHi: 5} // spans owners
		if w.Self() == 0 {
			a.Put(ctx, p, []float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
		}
		w.Sync(ctx)
		if w.Self() == 3 {
			got := make([]float64, 8)
			a.Get(ctx, p, got, 4)
			fmt.Println(got)
		}
		w.Sync(ctx)
	})
	// Output:
	// [1 2 3 4 5 6 7 8]
}

// ExampleSharedCounter_ReadInc is GA's dynamic load balancing: tasks draw
// unique work tickets from an atomic shared counter.
func ExampleSharedCounter_ReadInc() {
	c, _ := cluster.NewSimDefault(3)
	total := 0
	c.Run(func(ctx exec.Context, t *lapi.Task) {
		w, _ := ga.NewLAPIWorld(ctx, t, ga.DefaultConfig())
		cnt, _ := w.CreateCounter(ctx)
		mine := 0
		for {
			ticket, _ := cnt.ReadInc(ctx, 1)
			if ticket >= 9 {
				break
			}
			mine++ // "process" work unit #ticket
		}
		w.Sync(ctx)
		total += mine
	})
	fmt.Printf("9 tickets processed exactly once: %v\n", total == 9)
	// Output:
	// 9 tickets processed exactly once: true
}

// ExampleArray_Acc shows the atomic accumulate: concurrent contributions
// sum exactly, whatever the arrival order.
func ExampleArray_Acc() {
	c, _ := cluster.NewSimDefault(4)
	c.Run(func(ctx exec.Context, t *lapi.Task) {
		w, _ := ga.NewLAPIWorld(ctx, t, ga.DefaultConfig())
		a, _ := w.Create(ctx, 4, 4)
		a.Zero(ctx)
		p := ga.Patch{RLo: 0, RHi: 3, CLo: 0, CHi: 3}
		ones := make([]float64, 16)
		for i := range ones {
			ones[i] = 1
		}
		a.Acc(ctx, p, ones, 4, float64(w.Self()+1)) // alphas 1..4
		w.Sync(ctx)
		if w.Self() == 0 {
			fmt.Println(a.At(0, 0)) // 1+2+3+4
		}
		w.Sync(ctx)
	})
	// Output:
	// 10
}
