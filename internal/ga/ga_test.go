package ga_test

import (
	"math"
	"testing"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
	"golapi/internal/mpi"
	"golapi/internal/mpl"
	"golapi/internal/switchnet"
)

// backends enumerates the two GA implementations; every test runs on both.
var backends = []struct {
	name string
	run  func(t *testing.T, n int, main func(ctx exec.Context, w *ga.World))
}{
	{"LAPI", runLAPIWorld},
	{"MPL", runMPLWorld},
}

func runLAPIWorld(t *testing.T, n int, main func(ctx exec.Context, w *ga.World)) {
	t.Helper()
	c, err := cluster.NewSimDefault(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(ctx exec.Context, lt *lapi.Task) {
		w, err := ga.NewLAPIWorld(ctx, lt, ga.DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		main(ctx, w)
	}); err != nil {
		t.Fatal(err)
	}
}

func runMPLWorld(t *testing.T, n int, main func(ctx exec.Context, w *ga.World)) {
	t.Helper()
	mcfg := mpi.DefaultConfig()
	mcfg.EagerLimit = mcfg.MaxEagerLimit // MPL's large buffer pool (§5.4)
	c, err := cluster.NewSimMPL(n, switchnet.DefaultConfig(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(ctx exec.Context, mt *mpl.Task) {
		w, err := ga.NewMPLWorld(ctx, mt, ga.DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		main(ctx, w)
	}); err != nil {
		t.Fatal(err)
	}
}

func forBothBackends(t *testing.T, n int, main func(ctx exec.Context, w *ga.World)) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) { be.run(t, n, main) })
	}
}

func TestDistributionPartitionsArray(t *testing.T) {
	// Every element must be owned by exactly one rank, and Distribution
	// must agree with Owner — including ragged edges.
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, err := w.Create(ctx, 37, 53) // deliberately indivisible
		if err != nil {
			t.Error(err)
			return
		}
		if w.Self() != 0 {
			w.Sync(ctx)
			return
		}
		count := make(map[int]int)
		for i := 0; i < 37; i++ {
			for j := 0; j < 53; j++ {
				count[a.Owner(i, j)]++
			}
		}
		total := 0
		for r := 0; r < w.N(); r++ {
			p := a.Distribution(r)
			if !p.Empty() {
				if count[r] != p.Elems() {
					t.Errorf("rank %d: Owner count %d vs Distribution %v (%d)", r, count[r], p, p.Elems())
				}
				total += p.Elems()
			} else if count[r] != 0 {
				t.Errorf("rank %d: empty distribution but owns %d elements", r, count[r])
			}
		}
		if total != 37*53 {
			t.Errorf("distributions cover %d elements, want %d", total, 37*53)
		}
		w.Sync(ctx)
	})
}

func TestPutGetRoundTrip2D(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 64, 64)
		p := ga.Patch{RLo: 10, RHi: 40, CLo: 5, CHi: 50} // spans all 4 owners
		if w.Self() == 0 {
			buf := make([]float64, p.Elems())
			for k := range buf {
				buf[k] = float64(k) * 1.5
			}
			if err := a.Put(ctx, p, buf, p.Cols()); err != nil {
				t.Error(err)
			}
		}
		w.Sync(ctx)
		if w.Self() == 3 {
			got := make([]float64, p.Elems())
			if err := a.Get(ctx, p, got, p.Cols()); err != nil {
				t.Error(err)
			}
			for k := range got {
				if got[k] != float64(k)*1.5 {
					t.Errorf("element %d = %g, want %g", k, got[k], float64(k)*1.5)
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestPutGet1D(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 64, 4096)
		p := ga.Patch{RLo: 7, RHi: 7, CLo: 0, CHi: 4095} // one long row
		if w.Self() == 1 {
			buf := make([]float64, p.Elems())
			for k := range buf {
				buf[k] = math.Sqrt(float64(k))
			}
			a.Put(ctx, p, buf, p.Cols())
		}
		w.Sync(ctx)
		if w.Self() == 2 {
			got := make([]float64, p.Elems())
			a.Get(ctx, p, got, p.Cols())
			for k := range got {
				if got[k] != math.Sqrt(float64(k)) {
					t.Errorf("element %d wrong", k)
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestPutWithLeadingDimension(t *testing.T) {
	// Strided user buffers: ld larger than the patch width.
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 32, 32)
		p := ga.Patch{RLo: 4, RHi: 11, CLo: 8, CHi: 15}
		const ld = 20
		if w.Self() == 0 {
			buf := make([]float64, p.Rows()*ld)
			for r := 0; r < p.Rows(); r++ {
				for c := 0; c < p.Cols(); c++ {
					buf[r*ld+c] = float64(100*r + c)
				}
			}
			a.Put(ctx, p, buf, ld)
		}
		w.Sync(ctx)
		if w.Self() == 1 {
			got := make([]float64, p.Rows()*ld)
			a.Get(ctx, p, got, ld)
			for r := 0; r < p.Rows(); r++ {
				for c := 0; c < p.Cols(); c++ {
					if got[r*ld+c] != float64(100*r+c) {
						t.Errorf("(%d,%d) = %g", r, c, got[r*ld+c])
						return
					}
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestLargePutSwitchesToDirectProtocol(t *testing.T) {
	// A 2-D patch above DirectSwitchBytes (0.5 MB = 256x256 doubles) must
	// still be correct through the per-row direct path.
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 600, 600)
		p := ga.Patch{RLo: 0, RHi: 299, CLo: 0, CHi: 299} // 300x300 = 720 KB
		if w.Self() == 0 {
			buf := make([]float64, p.Elems())
			for k := range buf {
				buf[k] = float64(k%977) + 0.25
			}
			a.Put(ctx, p, buf, p.Cols())
		}
		w.Sync(ctx)
		if w.Self() == 2 {
			got := make([]float64, p.Elems())
			a.Get(ctx, p, got, p.Cols())
			for k := range got {
				if got[k] != float64(k%977)+0.25 {
					t.Errorf("element %d = %g", k, got[k])
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestAccumulateSumsExactly(t *testing.T) {
	// Every rank accumulates ones into the same patch concurrently; the
	// result must be exactly alpha*N everywhere (§5.1's atomic,
	// commutative accumulate).
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 48, 48)
		p := ga.Patch{RLo: 0, RHi: 47, CLo: 0, CHi: 47}
		ones := make([]float64, p.Elems())
		for k := range ones {
			ones[k] = 1
		}
		if err := a.Acc(ctx, p, ones, p.Cols(), 2.5); err != nil {
			t.Error(err)
		}
		w.Sync(ctx)
		if w.Self() == 0 {
			got := make([]float64, p.Elems())
			a.Get(ctx, p, got, p.Cols())
			want := 2.5 * float64(w.N())
			for k := range got {
				if got[k] != want {
					t.Errorf("element %d = %g, want %g (lost update?)", k, got[k], want)
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestScatterGather(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 40, 40)
		rows := []int{0, 5, 39, 20, 7, 33}
		cols := []int{0, 35, 39, 20, 31, 2}
		if w.Self() == 0 {
			vals := []float64{1.5, 2.5, 3.5, 4.5, 5.5, 6.5}
			if err := a.Scatter(ctx, rows, cols, vals); err != nil {
				t.Error(err)
			}
		}
		w.Sync(ctx)
		if w.Self() == 3 {
			out := make([]float64, len(rows))
			if err := a.Gather(ctx, rows, cols, out); err != nil {
				t.Error(err)
			}
			for k, want := range []float64{1.5, 2.5, 3.5, 4.5, 5.5, 6.5} {
				if out[k] != want {
					t.Errorf("gather[%d] = %g, want %g", k, out[k], want)
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestReadIncUniqueTickets(t *testing.T) {
	// The dynamic load-balancing pattern (§5.1): every ReadInc must
	// return a distinct ticket and the final count must be exact.
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		c, err := w.CreateCounter(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		const perRank = 10
		var got []int64
		for i := 0; i < perRank; i++ {
			v, err := c.ReadInc(ctx, 1)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, v)
		}
		w.Sync(ctx)
		final, _ := c.ReadInc(ctx, 0)
		if final != int64(4*perRank) {
			t.Errorf("rank %d sees final count %d, want %d", w.Self(), final, 4*perRank)
		}
		seen := map[int64]bool{}
		for _, v := range got {
			if seen[v] {
				t.Errorf("duplicate ticket %d on rank %d", v, w.Self())
			}
			seen[v] = true
		}
		w.Sync(ctx)
	})
}

func TestMutexMutualExclusion(t *testing.T) {
	// Classic critical-section check through a global array cell: read,
	// "compute", write back under the lock. Without mutual exclusion the
	// final value would be short.
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 1, 1)
		m, err := w.CreateMutexes(ctx, 2)
		if err != nil {
			t.Error(err)
			return
		}
		if w.Self() == 0 {
			a.Put(ctx, ga.Patch{}, []float64{0}, 1)
		}
		w.Sync(ctx)
		const perRank = 5
		for i := 0; i < perRank; i++ {
			if err := m.Lock(ctx, 1); err != nil {
				t.Error(err)
				return
			}
			v := make([]float64, 1)
			a.Get(ctx, ga.Patch{}, v, 1)
			v[0]++
			a.Put(ctx, ga.Patch{}, v, 1)
			// GA put is non-blocking: fence before releasing the
			// lock so the store is visible to the next holder.
			w.Fence(ctx)
			if err := m.Unlock(ctx, 1); err != nil {
				t.Error(err)
				return
			}
		}
		w.Sync(ctx)
		if w.Self() == 0 {
			v := make([]float64, 1)
			a.Get(ctx, ga.Patch{}, v, 1)
			if v[0] != float64(4*perRank) {
				t.Errorf("counter = %g, want %d (lost updates => broken mutex)", v[0], 4*perRank)
			}
		}
		w.Sync(ctx)
	})
}

func TestFenceMakesPutsVisible(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 16, 16)
		me := float64(w.Self() + 1)
		row := ga.Patch{RLo: w.Self() * 4, RHi: w.Self() * 4, CLo: 0, CHi: 15}
		buf := make([]float64, 16)
		for k := range buf {
			buf[k] = me
		}
		a.Put(ctx, row, buf, 16)
		w.Sync(ctx) // fence + barrier
		// Every rank now reads every row and must see the final values.
		for r := 0; r < w.N(); r++ {
			p := ga.Patch{RLo: r * 4, RHi: r * 4, CLo: 0, CHi: 15}
			got := make([]float64, 16)
			a.Get(ctx, p, got, 16)
			for k := range got {
				if got[k] != float64(r+1) {
					t.Errorf("rank %d: row %d elem %d = %g, want %d", w.Self(), r, k, got[k], r+1)
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestLocalAccess(t *testing.T) {
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 20, 20)
		local := a.Distribution(w.Self())
		// Fill our block locally, then read it remotely.
		for i := local.RLo; i <= local.RHi; i++ {
			for j := local.CLo; j <= local.CHi; j++ {
				a.SetLocal(i, j, float64(i*100+j))
			}
		}
		w.Sync(ctx)
		p := ga.Patch{RLo: 0, RHi: 19, CLo: 0, CHi: 19}
		got := make([]float64, p.Elems())
		a.Get(ctx, p, got, p.Cols())
		for i := 0; i < 20; i++ {
			for j := 0; j < 20; j++ {
				if got[i*20+j] != float64(i*100+j) {
					t.Errorf("(%d,%d) = %g", i, j, got[i*20+j])
					return
				}
			}
		}
		// At must agree with what we stored.
		if a.At(local.RLo, local.CLo) != float64(local.RLo*100+local.CLo) {
			t.Error("At mismatch")
		}
		w.Sync(ctx)
	})
}

func TestRequestValidation(t *testing.T) {
	forBothBackends(t, 2, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 8, 8)
		defer w.Sync(ctx)
		if w.Self() != 0 {
			return
		}
		buf := make([]float64, 64)
		if err := a.Put(ctx, ga.Patch{RLo: 0, RHi: 8, CLo: 0, CHi: 0}, buf, 1); err == nil {
			t.Error("out-of-bounds patch accepted")
		}
		if err := a.Put(ctx, ga.Patch{RLo: 2, RHi: 1, CLo: 0, CHi: 0}, buf, 1); err == nil {
			t.Error("empty patch accepted")
		}
		if err := a.Put(ctx, ga.Patch{RLo: 0, RHi: 3, CLo: 0, CHi: 3}, buf, 2); err == nil {
			t.Error("ld < patch width accepted")
		}
		if err := a.Get(ctx, ga.Patch{RLo: 0, RHi: 7, CLo: 0, CHi: 7}, buf[:10], 8); err == nil {
			t.Error("short buffer accepted")
		}
		if _, err := w.Create(ctx, 0, 5); err == nil {
			t.Error("zero-dim array accepted")
		}
		if err := a.Scatter(ctx, []int{99}, []int{0}, []float64{1}); err == nil {
			t.Error("out-of-range subscript accepted")
		}
	})
}

func TestGridFactorization(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		2:  {1, 2},
		4:  {2, 2},
		6:  {2, 3},
		9:  {3, 3},
		12: {3, 4},
	}
	for n, want := range cases {
		// processGrid is internal; exercise it through Distribution on
		// a world of that size (LAPI only; grid logic is shared).
		n, want := n, want
		runLAPIWorld(t, n, func(ctx exec.Context, w *ga.World) {
			a, _ := w.Create(ctx, 100, 100)
			if w.Self() != 0 {
				w.Sync(ctx)
				return
			}
			// Infer grid shape from block sizes.
			p0 := a.Distribution(0)
			gr := (100 + p0.Rows() - 1) / p0.Rows()
			gc := (100 + p0.Cols() - 1) / p0.Cols()
			if gr != want[0] || gc != want[1] {
				t.Errorf("n=%d: grid %dx%d, want %dx%d", n, gr, gc, want[0], want[1])
			}
			w.Sync(ctx)
		})
	}
}
