package ga_test

import (
	"testing"

	"golapi/internal/exec"
	"golapi/internal/ga"
)

func TestTinyArrayEmptyBlocks(t *testing.T) {
	// A 1x1 array on 4 tasks: three ranks own nothing. Everything must
	// still work (the paper's GA handled arbitrary shapes).
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, err := w.Create(ctx, 1, 1)
		if err != nil {
			t.Error(err)
			return
		}
		empty := 0
		for r := 0; r < 4; r++ {
			if a.Distribution(r).Empty() {
				empty++
			}
		}
		if empty != 3 {
			t.Errorf("empty blocks = %d, want 3", empty)
		}
		if w.Self() == 3 {
			if err := a.Put(ctx, ga.Patch{}, []float64{13.5}, 1); err != nil {
				t.Error(err)
			}
		}
		w.Sync(ctx)
		got := make([]float64, 1)
		a.Get(ctx, ga.Patch{}, got, 1)
		if got[0] != 13.5 {
			t.Errorf("rank %d reads %g", w.Self(), got[0])
		}
		w.Sync(ctx)
	})
}

func TestRowAndColumnVectors(t *testing.T) {
	// 1xN and Nx1 arrays stress the grid edge cases.
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		row, _ := w.Create(ctx, 1, 100)
		col, _ := w.Create(ctx, 100, 1)
		if w.Self() == 0 {
			v := make([]float64, 100)
			for k := range v {
				v[k] = float64(k) + 0.5
			}
			if err := row.Put(ctx, ga.Patch{RLo: 0, RHi: 0, CLo: 0, CHi: 99}, v, 100); err != nil {
				t.Error(err)
			}
			if err := col.Put(ctx, ga.Patch{RLo: 0, RHi: 99, CLo: 0, CHi: 0}, v, 1); err != nil {
				t.Error(err)
			}
		}
		w.Sync(ctx)
		if w.Self() == 1 {
			got := make([]float64, 100)
			row.Get(ctx, ga.Patch{RLo: 0, RHi: 0, CLo: 0, CHi: 99}, got, 100)
			for k, v := range got {
				if v != float64(k)+0.5 {
					t.Errorf("row[%d] = %g", k, v)
					return
				}
			}
			col.Get(ctx, ga.Patch{RLo: 0, RHi: 99, CLo: 0, CHi: 0}, got, 1)
			for k, v := range got {
				if v != float64(k)+0.5 {
					t.Errorf("col[%d] = %g", k, v)
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestNonSquareGrid6Tasks(t *testing.T) {
	// 6 tasks -> 2x3 grid: owner arithmetic differs between rows and
	// columns; a patch spanning everything must still round-trip.
	forBothBackends(t, 6, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 30, 30)
		p := ga.Patch{RLo: 0, RHi: 29, CLo: 0, CHi: 29}
		if w.Self() == 5 {
			buf := make([]float64, p.Elems())
			for k := range buf {
				buf[k] = float64(k % 101)
			}
			a.Put(ctx, p, buf, 30)
		}
		w.Sync(ctx)
		if w.Self() == 2 {
			got := make([]float64, p.Elems())
			a.Get(ctx, p, got, 30)
			for k := range got {
				if got[k] != float64(k%101) {
					t.Errorf("element %d = %g", k, got[k])
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestSingleTaskWorld(t *testing.T) {
	// Degenerate 1-task world: everything is loopback.
	forBothBackends(t, 1, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 10, 10)
		p := ga.Patch{RLo: 2, RHi: 7, CLo: 3, CHi: 8}
		buf := make([]float64, p.Elems())
		for k := range buf {
			buf[k] = float64(k)
		}
		if err := a.Put(ctx, p, buf, p.Cols()); err != nil {
			t.Error(err)
		}
		w.Sync(ctx)
		got := make([]float64, p.Elems())
		a.Get(ctx, p, got, p.Cols())
		for k := range got {
			if got[k] != float64(k) {
				t.Errorf("element %d = %g", k, got[k])
				return
			}
		}
		c, _ := w.CreateCounter(ctx)
		if v, _ := c.ReadInc(ctx, 5); v != 0 {
			t.Errorf("first readinc = %d", v)
		}
		if v, _ := c.ReadInc(ctx, 0); v != 5 {
			t.Errorf("second readinc = %d", v)
		}
		sum, _ := w.ReduceSum(ctx, 3.25)
		if sum != 3.25 {
			t.Errorf("1-task reduce = %g", sum)
		}
		w.Sync(ctx)
	})
}

func TestSingleRowPatchAcrossColumnOwners(t *testing.T) {
	// A 1-row patch spanning two column owners: two contiguous (1-D)
	// subrequests with different owners.
	forBothBackends(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 16, 16) // 2x2 grid: column split at 8
		p := ga.Patch{RLo: 5, RHi: 5, CLo: 4, CHi: 11}
		if w.Self() == 0 {
			a.Put(ctx, p, []float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
		}
		w.Sync(ctx)
		if w.Self() == 3 {
			got := make([]float64, 8)
			a.Get(ctx, p, got, 8)
			for k, v := range got {
				if v != float64(k+1) {
					t.Errorf("element %d = %g", k, v)
				}
			}
		}
		w.Sync(ctx)
	})
}
