package ga

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"golapi/internal/exec"
	"golapi/internal/lapi"
)

// GA-over-LAPI request opcodes, carried in the AM user header.
const (
	gaPut byte = iota + 1
	gaAcc
	gaGetReq
	gaGetRep
	gaScatter
	gaGatherReq
	gaGatherRep
)

// gaHdr is the user header of every GA active message (well under the
// QueryMaxUhdr limit, leaving the paper's ≈900 bytes of packet payload for
// data).
type gaHdr struct {
	op     byte
	handle uint16
	sub    Patch
	alpha  float64
	id     uint32 // pending-request id (get/gather)
	cntr   uint32 // origin counter to signal on reply (RemoteCounter)
	count  uint32 // subscript count (scatter/gather)
}

const gaHdrSize = 40

func (h *gaHdr) encode() []byte {
	b := make([]byte, gaHdrSize)
	b[0] = h.op
	binary.BigEndian.PutUint16(b[2:], h.handle)
	binary.BigEndian.PutUint32(b[4:], uint32(h.sub.RLo))
	binary.BigEndian.PutUint32(b[8:], uint32(h.sub.RHi))
	binary.BigEndian.PutUint32(b[12:], uint32(h.sub.CLo))
	binary.BigEndian.PutUint32(b[16:], uint32(h.sub.CHi))
	binary.BigEndian.PutUint64(b[20:], math.Float64bits(h.alpha))
	binary.BigEndian.PutUint32(b[28:], h.id)
	binary.BigEndian.PutUint32(b[32:], h.cntr)
	binary.BigEndian.PutUint32(b[36:], h.count)
	return b
}

func decodeGaHdr(b []byte) gaHdr {
	return gaHdr{
		op:     b[0],
		handle: binary.BigEndian.Uint16(b[2:]),
		sub: Patch{
			RLo: int(int32(binary.BigEndian.Uint32(b[4:]))),
			RHi: int(int32(binary.BigEndian.Uint32(b[8:]))),
			CLo: int(int32(binary.BigEndian.Uint32(b[12:]))),
			CHi: int(int32(binary.BigEndian.Uint32(b[16:]))),
		},
		alpha: math.Float64frombits(binary.BigEndian.Uint64(b[20:])),
		id:    binary.BigEndian.Uint32(b[28:]),
		cntr:  binary.BigEndian.Uint32(b[32:]),
		count: binary.BigEndian.Uint32(b[36:]),
	}
}

// lapiArrayInfo is the backend's per-array state.
type lapiArrayInfo struct {
	local Patch       // this task's block
	base  lapi.Addr   // local block storage
	bases []lapi.Addr // every task's block base (from AddressInit)
}

// pendingGet tracks an outstanding AM-protocol get or gather.
type pendingGet struct {
	buf  []float64 // get: destination with ld/off
	ld   int
	off  int
	sub  Patch
	vals []float64 // gather destination
	done *lapi.Counter
}

// lapiBackend implements the paper's §5.3 GA protocols over LAPI.
type lapiBackend struct {
	w   *World
	t   *lapi.Task
	cfg Config

	reqH lapi.HandlerID
	repH lapi.HandlerID

	arrays map[int]*lapiArrayInfo

	pending map[uint32]*pendingGet
	nextID  uint32

	// Generalized counters, one per remote node (§5.3.2): a LAPI counter
	// used as the completion counter of every Put and Amsend targeting
	// that node, the opcode of the most recent operation, and the number
	// of outstanding requests. Fence waits each counter down to zero.
	nodeCntr   []*lapi.Counter
	nodeIssued []int
	nodeLastOp []byte

	// Counter free-list: blocking calls borrow a counter and return it.
	cntrPool []*lapi.Counter

	// accMu serializes accumulate application against other completion
	// handlers (§5.3.3's Pthread-mutex role).
	accMu locker
}

// locker is a tiny mutex for exec activities.
type locker struct {
	held bool
	cond exec.Cond
}

func (l *locker) lock(ctx exec.Context) {
	for l.held {
		ctx.Wait(l.cond)
	}
	l.held = true
}

func (l *locker) unlock() {
	l.held = false
	l.cond.Broadcast()
}

// NewLAPIWorld collectively creates a GA runtime over LAPI. Every task must
// call it at the same point (it registers AM handlers and barriers).
func NewLAPIWorld(ctx exec.Context, t *lapi.Task, cfg Config) (*World, error) {
	if cfg.AMChunkBytes <= 0 || cfg.MemcpyBandwidth < 0 || cfg.DirectSwitchBytes <= 0 {
		return nil, fmt.Errorf("ga: invalid config %+v", cfg)
	}
	b := &lapiBackend{
		t:       t,
		cfg:     cfg,
		arrays:  make(map[int]*lapiArrayInfo),
		pending: make(map[uint32]*pendingGet),
	}
	b.accMu.cond = newCondFor(t)
	b.reqH = t.RegisterHandler(b.handleRequest)
	b.repH = t.RegisterHandler(b.handleReply)
	b.nodeCntr = make([]*lapi.Counter, t.N())
	b.nodeIssued = make([]int, t.N())
	b.nodeLastOp = make([]byte, t.N())
	for i := range b.nodeCntr {
		b.nodeCntr[i] = t.NewCounter()
	}
	w := &World{cfg: cfg, b: b}
	b.w = w
	t.Barrier(ctx)
	return w, nil
}

func newCondFor(t *lapi.Task) exec.Cond { return t.Runtime().NewCond() }

func (b *lapiBackend) self() int { return b.t.Self() }
func (b *lapiBackend) n() int    { return b.t.N() }

func (b *lapiBackend) info(handle int) *lapiArrayInfo {
	in := b.arrays[handle]
	if in == nil {
		panic(fmt.Sprintf("ga: unknown array handle %d on rank %d", handle, b.self()))
	}
	return in
}

func (b *lapiBackend) createArray(ctx exec.Context, a *Array) error {
	local := a.Distribution(b.self())
	size := 0
	if !local.Empty() {
		size = local.Elems() * 8
	}
	base := b.t.Alloc(size)
	bases, err := b.t.AddressInit(ctx, base)
	if err != nil {
		return err
	}
	b.arrays[a.handle] = &lapiArrayInfo{local: local, base: base, bases: bases}
	return nil
}

// borrowCntr takes a counter from the pool (or registers a new one).
func (b *lapiBackend) borrowCntr() *lapi.Counter {
	if n := len(b.cntrPool); n > 0 {
		c := b.cntrPool[n-1]
		b.cntrPool = b.cntrPool[:n-1]
		return c
	}
	return b.t.NewCounter()
}

func (b *lapiBackend) returnCntr(c *lapi.Counter) {
	b.cntrPool = append(b.cntrPool, c)
}

// remoteAddr returns the address of global element (i, j) in owner's block.
func (b *lapiBackend) remoteAddr(a *Array, owner, i, j int) lapi.Addr {
	in := b.info(a.handle)
	ownerLocal := a.Distribution(owner)
	return in.bases[owner] + lapi.Addr(blockIndex(ownerLocal, i, j))
}

// track records an operation with a completion counter toward owner for
// Fence (§5.3.2's generalized counter update).
func (b *lapiBackend) track(owner int, op byte) *lapi.Counter {
	b.nodeIssued[owner]++
	b.nodeLastOp[owner] = op
	return b.nodeCntr[owner]
}

// --- put -----------------------------------------------------------------

func (b *lapiBackend) put(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	bytes := sub.Elems() * 8
	switch {
	case sub.Contiguous():
		// 1-D request: direct LAPI_Put, no pack copy (§5.3, §5.4).
		return b.directPutRows(ctx, a, owner, sub, buf, ld, off)
	case b.cfg.UseVectorOps:
		// §6 extension: the whole 2-D patch as one strided put —
		// one message, no AM pack/unpack copies.
		return b.vectorPut(ctx, a, owner, sub, buf, ld, off)
	case bytes >= b.cfg.DirectSwitchBytes:
		// Very large 2-D request: switch to per-row direct transfers
		// ("GA switches to LAPI_Put protocol to send individual
		// columns of a 2-D patch", §5.4 — rows here, row-major).
		return b.directPutRows(ctx, a, owner, sub, buf, ld, off)
	default:
		// Small/medium non-contiguous: pack into pipelined active
		// messages of ≈AMChunkBytes (§5.3.1).
		return b.amPutAcc(ctx, gaPut, a, owner, sub, buf, ld, off, 0)
	}
}

// stride returns the LAPI stride vector describing sub within owner's
// local block.
func (b *lapiBackend) stride(a *Array, owner int, sub Patch) (lapi.Addr, lapi.Stride) {
	base := b.remoteAddr(a, owner, sub.RLo, sub.CLo)
	ownerLocal := a.Distribution(owner)
	return base, lapi.Stride{
		Blocks:      sub.Rows(),
		BlockBytes:  sub.Cols() * 8,
		StrideBytes: ownerLocal.Cols() * 8,
	}
}

// vectorPut ships a 2-D patch as a single strided put. The linearization
// of the user's (ld-strided) rows into the wire stream stands in for the
// adapter's gather DMA and carries no charged copy.
func (b *lapiBackend) vectorPut(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	org := b.borrowCntr()
	defer b.returnCntr(org)
	data := make([]byte, sub.Elems()*8)
	packPatch(data, buf, ld, off, sub.Rows(), sub.Cols())
	base, st := b.stride(a, owner, sub)
	if err := b.t.PutStrided(ctx, owner, base, st, data, lapi.NoCounter, org, b.track(owner, gaPut)); err != nil {
		return err
	}
	b.t.Waitcntr(ctx, org, 1)
	return nil
}

// vectorGet pulls a 2-D patch with a single strided get.
func (b *lapiBackend) vectorGet(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	org := b.borrowCntr()
	defer b.returnCntr(org)
	scratch := make([]byte, sub.Elems()*8)
	base, st := b.stride(a, owner, sub)
	if err := b.t.GetStrided(ctx, owner, base, st, scratch, lapi.NoCounter, org); err != nil {
		return err
	}
	b.t.Waitcntr(ctx, org, 1)
	unpackPatch(buf, ld, off, scratch, sub.Rows(), sub.Cols())
	return nil
}

// directPutRows issues one LAPI_Put per row of sub and waits until the user
// buffer is reusable (the origin counters), which is GA put's contract.
func (b *lapiBackend) directPutRows(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	org := b.borrowCntr()
	defer b.returnCntr(org)
	rows, cols := sub.Rows(), sub.Cols()
	for r := 0; r < rows; r++ {
		// The row encode below stands in for the adapter's DMA read
		// of user memory: it is not one of the paper's "extra
		// copies" and carries no modelled cost.
		wire := make([]byte, cols*8)
		packRow(wire, buf, off+r*ld, cols)
		addr := b.remoteAddr(a, owner, sub.RLo+r, sub.CLo)
		if err := b.t.Put(ctx, owner, addr, wire, lapi.NoCounter, org, b.track(owner, gaPut)); err != nil {
			return err
		}
	}
	b.t.Waitcntr(ctx, org, rows)
	return nil
}

// amPutAcc ships a put or accumulate through the AM protocol: pack (charged
// copy), pipelined Amsends, no waiting — the pack buffers are internal.
func (b *lapiBackend) amPutAcc(ctx exec.Context, op byte, a *Array, owner int, sub Patch, buf []float64, ld, off int, alpha float64) error {
	cols := sub.Cols()
	rowBytes := cols * 8
	rowsPer := b.cfg.AMChunkBytes / rowBytes
	if rowsPer < 1 {
		rowsPer = 1
	}
	for r0 := 0; r0 < sub.Rows(); r0 += rowsPer {
		r1 := min(r0+rowsPer, sub.Rows())
		chunk := Patch{RLo: sub.RLo + r0, RHi: sub.RLo + r1 - 1, CLo: sub.CLo, CHi: sub.CHi}
		data := make([]byte, chunk.Elems()*8)
		// The pack copy is one of the AM protocol's two extra copies
		// (§5.3): charge it.
		if c := b.cfg.copyCost(len(data)); c > 0 {
			ctx.Sleep(c)
		}
		packPatch(data, buf, ld, off+r0*ld, chunk.Rows(), chunk.Cols())
		h := gaHdr{op: op, handle: uint16(a.handle), sub: chunk, alpha: alpha}
		if err := b.t.Amsend(ctx, owner, b.reqH, h.encode(), data, lapi.NoCounter, nil, b.track(owner, op)); err != nil {
			return err
		}
	}
	return nil
}

// --- get -----------------------------------------------------------------

func (b *lapiBackend) get(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	bytes := sub.Elems() * 8
	switch {
	case sub.Contiguous():
		return b.directGetRows(ctx, a, owner, sub, buf, ld, off)
	case b.cfg.UseVectorOps:
		return b.vectorGet(ctx, a, owner, sub, buf, ld, off)
	case bytes >= b.cfg.DirectSwitchBytes:
		return b.directGetRows(ctx, a, owner, sub, buf, ld, off)
	default:
		return b.amGet(ctx, a, owner, sub, buf, ld, off)
	}
}

// directGetRows pulls each row with LAPI_Get straight into wire buffers and
// decodes (the decode stands in for DMA placement; no charged copy — "the
// LAPI version uses the LAPI_Get operation directly and avoids two memory
// copies", §5.4).
func (b *lapiBackend) directGetRows(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	org := b.borrowCntr()
	defer b.returnCntr(org)
	rows, cols := sub.Rows(), sub.Cols()
	scratch := make([]byte, rows*cols*8)
	for r := 0; r < rows; r++ {
		addr := b.remoteAddr(a, owner, sub.RLo+r, sub.CLo)
		if err := b.t.Get(ctx, owner, addr, scratch[r*cols*8:(r+1)*cols*8], lapi.NoCounter, org); err != nil {
			return err
		}
	}
	b.t.Waitcntr(ctx, org, rows)
	for r := 0; r < rows; r++ {
		unpackRow(buf, off+r*ld, scratch[r*cols*8:], cols)
	}
	return nil
}

// amGet sends an AM request; the target's completion handler packs and
// replies with an AM whose completion at the origin unpacks into the user
// buffer and fires the reply counter.
func (b *lapiBackend) amGet(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	done := b.borrowCntr()
	defer b.returnCntr(done)
	b.nextID++
	id := b.nextID
	b.pending[id] = &pendingGet{buf: buf, ld: ld, off: off, sub: sub, done: done}
	h := gaHdr{op: gaGetReq, handle: uint16(a.handle), sub: sub, id: id, cntr: uint32(done.ID())}
	if err := b.t.Amsend(ctx, owner, b.reqH, h.encode(), nil, lapi.NoCounter, nil, nil); err != nil {
		delete(b.pending, id)
		return err
	}
	b.t.Waitcntr(ctx, done, 1)
	return nil
}

// --- accumulate, scatter, gather ------------------------------------------

func (b *lapiBackend) acc(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int, alpha float64) error {
	// Accumulate always takes the AM path: it must execute code at the
	// target (§5.3.3).
	return b.amPutAcc(ctx, gaAcc, a, owner, sub, buf, ld, off, alpha)
}

func (b *lapiBackend) scatter(ctx exec.Context, a *Array, owner int, idx []int32, vals []float64) error {
	n := len(vals)
	data := make([]byte, n*16)
	if c := b.cfg.copyCost(len(data)); c > 0 {
		ctx.Sleep(c)
	}
	for k := 0; k < n; k++ {
		binary.BigEndian.PutUint32(data[k*16:], uint32(idx[2*k]))
		binary.BigEndian.PutUint32(data[k*16+4:], uint32(idx[2*k+1]))
		putF64(data[k*16+8:], vals[k])
	}
	h := gaHdr{op: gaScatter, handle: uint16(a.handle), count: uint32(n)}
	return b.t.Amsend(ctx, owner, b.reqH, h.encode(), data, lapi.NoCounter, nil, b.track(owner, gaScatter))
}

func (b *lapiBackend) gather(ctx exec.Context, a *Array, owner int, idx []int32, out []float64) error {
	done := b.borrowCntr()
	defer b.returnCntr(done)
	n := len(out)
	data := make([]byte, n*8)
	for k := 0; k < n; k++ {
		binary.BigEndian.PutUint32(data[k*8:], uint32(idx[2*k]))
		binary.BigEndian.PutUint32(data[k*8+4:], uint32(idx[2*k+1]))
	}
	b.nextID++
	id := b.nextID
	b.pending[id] = &pendingGet{vals: out, done: done}
	h := gaHdr{op: gaGatherReq, handle: uint16(a.handle), id: id, cntr: uint32(done.ID()), count: uint32(n)}
	if err := b.t.Amsend(ctx, owner, b.reqH, h.encode(), data, lapi.NoCounter, nil, nil); err != nil {
		delete(b.pending, id)
		return err
	}
	b.t.Waitcntr(ctx, done, 1)
	return nil
}

// --- counters and mutexes --------------------------------------------------

func (b *lapiBackend) newCounter(ctx exec.Context, c *SharedCounter) error {
	var base lapi.Addr
	if b.self() == c.owner {
		base = b.t.Alloc(8)
	}
	words, err := b.t.ExchangeWord(ctx, uint64(base))
	if err != nil {
		return err
	}
	c.loc = words[c.owner]
	return nil
}

func (b *lapiBackend) readInc(ctx exec.Context, c *SharedCounter, inc int64) (int64, error) {
	org := b.borrowCntr()
	defer b.returnCntr(org)
	var prev int64
	if err := b.t.Rmw(ctx, lapi.RmwFetchAndAdd, c.owner, lapi.Addr(c.loc), inc, 0, &prev, org); err != nil {
		return 0, err
	}
	b.t.Waitcntr(ctx, org, 1)
	return prev, nil
}

func (b *lapiBackend) newMutexes(ctx exec.Context, m *MutexSet) error {
	hosted := 0
	for i := 0; i < m.n; i++ {
		if m.mutexOwner(i) == b.self() {
			hosted++
		}
	}
	var base lapi.Addr
	if hosted > 0 {
		base = b.t.Alloc(hosted * 8)
	}
	words, err := b.t.ExchangeWord(ctx, uint64(base))
	if err != nil {
		return err
	}
	m.locs = make([]uint64, m.n)
	for i := 0; i < m.n; i++ {
		owner := m.mutexOwner(i)
		m.locs[i] = words[owner] + uint64(8*(i/b.n()))
	}
	return nil
}

// lock acquires a global mutex by spinning on a remote compare-and-swap
// (the paper's simple RMW-based synchronization, §3).
func (b *lapiBackend) lock(ctx exec.Context, m *MutexSet, i int) error {
	org := b.borrowCntr()
	defer b.returnCntr(org)
	owner := m.mutexOwner(i)
	backoff := 5 * time.Microsecond
	for {
		var prev int64
		if err := b.t.Rmw(ctx, lapi.RmwCompareAndSwap, owner, lapi.Addr(m.locs[i]), 1, 0, &prev, org); err != nil {
			return err
		}
		b.t.Waitcntr(ctx, org, 1)
		if prev == 0 {
			return nil
		}
		ctx.Sleep(backoff)
		if backoff < 100*time.Microsecond {
			backoff *= 2
		}
	}
}

func (b *lapiBackend) unlock(ctx exec.Context, m *MutexSet, i int) error {
	org := b.borrowCntr()
	defer b.returnCntr(org)
	var prev int64
	if err := b.t.Rmw(ctx, lapi.RmwSwap, m.mutexOwner(i), lapi.Addr(m.locs[i]), 0, 0, &prev, org); err != nil {
		return err
	}
	b.t.Waitcntr(ctx, org, 1)
	if prev != 1 {
		return fmt.Errorf("ga: Unlock(%d): mutex was not held (value %d)", i, prev)
	}
	return nil
}

// --- fence, barrier, local access -------------------------------------------

func (b *lapiBackend) fence(ctx exec.Context) error {
	for r := 0; r < b.n(); r++ {
		if k := b.nodeIssued[r]; k > 0 {
			b.t.Waitcntr(ctx, b.nodeCntr[r], k)
			b.nodeIssued[r] -= k
		}
	}
	return nil
}

func (b *lapiBackend) barrier(ctx exec.Context) error {
	b.t.Barrier(ctx)
	return nil
}

func (b *lapiBackend) localRead(a *Array, i, j int) float64 {
	in := b.info(a.handle)
	blk := b.t.MustBytes(in.base, in.local.Elems()*8)
	return getF64(blk[blockIndex(in.local, i, j):])
}

func (b *lapiBackend) localWrite(a *Array, i, j int, v float64) {
	in := b.info(a.handle)
	blk := b.t.MustBytes(in.base, in.local.Elems()*8)
	putF64(blk[blockIndex(in.local, i, j):], v)
}

// --- target-side handlers ----------------------------------------------------

// handleRequest is the GA request header handler (runs in the LAPI
// dispatcher; must not block). It allocates the AM buffer and defers all
// work to the completion handler.
func (b *lapiBackend) handleRequest(t *lapi.Task, info *lapi.AmInfo) (lapi.Addr, lapi.CompletionHandler) {
	h := decodeGaHdr(info.UHdr)
	var buf lapi.Addr
	if info.DataLen > 0 {
		buf = t.Alloc(info.DataLen)
	}
	src := info.Src
	n := info.DataLen
	return buf, func(ctx exec.Context, t2 *lapi.Task) {
		b.completeRequest(ctx, t2, src, h, buf, n)
	}
}

func (b *lapiBackend) completeRequest(ctx exec.Context, t *lapi.Task, src int, h gaHdr, buf lapi.Addr, n int) {
	in := b.info(int(h.handle))
	var data []byte
	if n > 0 {
		data = t.MustBytes(buf, n)
		defer t.Free(buf)
	}
	block := t.MustBytes(in.base, in.local.Elems()*8)
	switch h.op {
	case gaPut:
		// Unpack into the local block: the second of the AM
		// protocol's extra copies (§5.3).
		if c := b.cfg.copyCost(n); c > 0 {
			ctx.Sleep(c)
		}
		storeInto(block, in.local, h.sub, data)
	case gaAcc:
		b.accMu.lock(ctx)
		if c := b.cfg.copyCost(n); c > 0 {
			ctx.Sleep(c)
		}
		accumulateInto(block, in.local, h.sub, data, h.alpha)
		b.accMu.unlock()
	case gaGetReq:
		reply := make([]byte, h.sub.Elems()*8)
		if c := b.cfg.copyCost(len(reply)); c > 0 {
			ctx.Sleep(c)
		}
		loadFrom(reply, block, in.local, h.sub)
		rh := gaHdr{op: gaGetRep, sub: h.sub, id: h.id, cntr: h.cntr}
		if err := t.Amsend(ctx, src, b.repH, rh.encode(), reply, lapi.RemoteCounter(h.cntr), nil, b.track(src, gaGetRep)); err != nil {
			panic(fmt.Sprintf("ga: rank %d: get reply: %v", t.Self(), err))
		}
	case gaScatter:
		if c := b.cfg.copyCost(n); c > 0 {
			ctx.Sleep(c)
		}
		for k := 0; k < int(h.count); k++ {
			i := int(int32(binary.BigEndian.Uint32(data[k*16:])))
			j := int(int32(binary.BigEndian.Uint32(data[k*16+4:])))
			v := getF64(data[k*16+8:])
			putF64(block[blockIndex(in.local, i, j):], v)
		}
	case gaGatherReq:
		reply := make([]byte, int(h.count)*8)
		if c := b.cfg.copyCost(len(reply)); c > 0 {
			ctx.Sleep(c)
		}
		for k := 0; k < int(h.count); k++ {
			i := int(int32(binary.BigEndian.Uint32(data[k*8:])))
			j := int(int32(binary.BigEndian.Uint32(data[k*8+4:])))
			copy(reply[k*8:], block[blockIndex(in.local, i, j):blockIndex(in.local, i, j)+8])
		}
		rh := gaHdr{op: gaGatherRep, id: h.id, cntr: h.cntr, count: h.count}
		if err := t.Amsend(ctx, src, b.repH, rh.encode(), reply, lapi.RemoteCounter(h.cntr), nil, b.track(src, gaGatherRep)); err != nil {
			panic(fmt.Sprintf("ga: rank %d: gather reply: %v", t.Self(), err))
		}
	default:
		panic(fmt.Sprintf("ga: rank %d: bad request op %d", t.Self(), h.op))
	}
}

// handleReply is the header handler for get/gather replies at the origin.
func (b *lapiBackend) handleReply(t *lapi.Task, info *lapi.AmInfo) (lapi.Addr, lapi.CompletionHandler) {
	h := decodeGaHdr(info.UHdr)
	buf := t.Alloc(info.DataLen)
	n := info.DataLen
	return buf, func(ctx exec.Context, t2 *lapi.Task) {
		p := b.pending[h.id]
		if p == nil {
			panic(fmt.Sprintf("ga: rank %d: reply for unknown request %d", t2.Self(), h.id))
		}
		delete(b.pending, h.id)
		data := t2.MustBytes(buf, n)
		defer t2.Free(buf)
		if c := b.cfg.copyCost(n); c > 0 {
			ctx.Sleep(c)
		}
		switch h.op {
		case gaGetRep:
			unpackPatch(p.buf, p.ld, p.off, data, p.sub.Rows(), p.sub.Cols())
		case gaGatherRep:
			for k := range p.vals {
				p.vals[k] = getF64(data[k*8:])
			}
		default:
			panic(fmt.Sprintf("ga: rank %d: bad reply op %d", t2.Self(), h.op))
		}
		// The reply's target counter (p.done, named in the request)
		// fires after this handler returns, releasing the blocked
		// caller with the data already unpacked.
	}
}
