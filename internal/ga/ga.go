// Package ga implements the Global Arrays toolkit of §5: a portable
// shared-memory programming model over dense 2-D double-precision arrays,
// block-distributed across the tasks of a job. Operations (put, get,
// accumulate, scatter, gather, read-and-increment, locks, sync) are
// one-sided and unilateral, like the LAPI operations they are built on.
//
// Two interchangeable backends implement the communication protocols:
//
//   - the LAPI backend (§5.3), with the paper's hybrid protocols: direct
//     remote memory copy for contiguous (1-D) requests, pipelined active
//     messages with pack/unpack for small and medium non-contiguous (2-D)
//     requests, and a switch to per-row direct transfers for very large 2-D
//     patches (≈0.5 MB);
//
//   - the MPL backend (§5.2), the paper's baseline: request messages served
//     by an interrupt-driven rcvncall handler, with the extra sender-side
//     copy MPL's in-order progress rules force (header and data must travel
//     in one message) and a packed reply for gets.
//
// Arrays use inclusive element ranges [RLo,RHi]x[CLo,CHi] in row-major
// order, and user buffers are []float64 with an explicit leading dimension,
// mirroring the GA 2-dimensional API.
package ga

import (
	"fmt"
	"time"

	"golapi/internal/exec"
)

// Patch is an inclusive rectangular section of a global array, GA-style.
type Patch struct {
	RLo, RHi, CLo, CHi int
}

// Rows returns the number of rows in the patch.
func (p Patch) Rows() int { return p.RHi - p.RLo + 1 }

// Cols returns the number of columns in the patch.
func (p Patch) Cols() int { return p.CHi - p.CLo + 1 }

// Elems returns the number of elements in the patch.
func (p Patch) Elems() int { return p.Rows() * p.Cols() }

// Empty reports whether the patch contains no elements.
func (p Patch) Empty() bool { return p.RHi < p.RLo || p.CHi < p.CLo }

// Contiguous reports whether the patch is contiguous in row-major storage
// as a request: a single row segment. This is the paper's "1-D request".
func (p Patch) Contiguous() bool { return p.RLo == p.RHi }

func (p Patch) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d]", p.RLo, p.RHi, p.CLo, p.CHi)
}

// intersect returns the overlap of two patches (possibly empty).
func (p Patch) intersect(q Patch) Patch {
	r := Patch{
		RLo: max(p.RLo, q.RLo), RHi: min(p.RHi, q.RHi),
		CLo: max(p.CLo, q.CLo), CHi: min(p.CHi, q.CHi),
	}
	return r
}

// Config holds the GA protocol knobs (§5.3: "the thresholds used for
// switching between different protocols are selected empirically").
type Config struct {
	// MemcpyBandwidth prices GA's pack/unpack copies (bytes/sec).
	MemcpyBandwidth float64
	// AMChunkBytes is the target payload of one pipelined active message
	// for medium non-contiguous requests (§5.3.1's ≈900 bytes).
	AMChunkBytes int
	// DirectSwitchBytes: a non-contiguous request at least this large
	// switches from the AM protocol to per-row direct Put/Get (§5.4's
	// ≈0.5 MB "LAPI_Put protocol" switch).
	DirectSwitchBytes int
	// MaxRequestBytes is the MPL server's preallocated receive buffer;
	// larger requests are split (§5.3.1's buffer management concern).
	MaxRequestBytes int
	// RequestOverhead is the GA-layer software cost charged once per
	// user-level operation (array index arithmetic, protocol selection,
	// request decomposition) — the gap between raw LAPI latency and the
	// §5.4 GA latencies.
	RequestOverhead time.Duration
	// UseVectorOps, on the LAPI backend, routes non-contiguous put/get
	// through the strided PutStrided/GetStrided interface instead of the
	// AM protocol — the paper's §6 future-work extension ("providing a
	// non-contiguous interface to LAPI_Put and LAPI_Get ... removing the
	// overhead associated with multiple requests or the copy overhead in
	// the AM-based implementations"). Off by default: the paper's LAPI
	// had no such interface. Ignored by the MPL backend.
	UseVectorOps bool
}

// DefaultConfig mirrors the paper's empirically chosen thresholds.
func DefaultConfig() Config {
	return Config{
		MemcpyBandwidth:   800e6,
		AMChunkBytes:      900,
		DirectSwitchBytes: 512 * 1024,
		MaxRequestBytes:   1 << 20,
		RequestOverhead:   20 * time.Microsecond,
	}
}

func (c Config) copyCost(n int) time.Duration {
	if c.MemcpyBandwidth <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / c.MemcpyBandwidth * float64(time.Second))
}

// backend is the communication substrate behind a World. Both backends
// implement the same one-sided operation set against their library.
type backend interface {
	self() int
	n() int
	// createArray performs the collective allocation for array a (local
	// block allocation plus any address exchange).
	createArray(ctx exec.Context, a *Array) error
	put(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld int, off int) error
	get(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld int, off int) error
	acc(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld int, off int, alpha float64) error
	scatter(ctx exec.Context, a *Array, owner int, idx []int32, vals []float64) error
	gather(ctx exec.Context, a *Array, owner int, idx []int32, out []float64) error
	readInc(ctx exec.Context, c *SharedCounter, inc int64) (int64, error)
	lock(ctx exec.Context, m *MutexSet, i int) error
	unlock(ctx exec.Context, m *MutexSet, i int) error
	// fence waits until all operations this task initiated are complete
	// at their targets (§5.3.2's generalized counters).
	fence(ctx exec.Context) error
	barrier(ctx exec.Context) error
	// localBlock exposes the local storage of a for Access.
	localRead(a *Array, i, j int) float64
	localWrite(a *Array, i, j int, v float64)
	newCounter(ctx exec.Context, c *SharedCounter) error
	newMutexes(ctx exec.Context, m *MutexSet) error
}

// World is a task's handle to the GA runtime (one per task, SPMD).
type World struct {
	cfg Config
	b   backend

	arrays    []*Array
	counters  int // SharedCounters created (SPMD ids)
	mutexSets int
	stage     *Array // lazily created 1 x N row for reductions
}

// Self returns this task's rank.
func (w *World) Self() int { return w.b.self() }

// N returns the job size.
func (w *World) N() int { return w.b.n() }

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Array is a dense rows x cols float64 global array, block-distributed
// over an r x c process grid.
type Array struct {
	w          *World
	handle     int
	rows, cols int
	gridR      int // process grid rows
	gridC      int // process grid cols
	blockR     int // block rows (ceil division)
	blockC     int // block cols
}

// Create collectively allocates a rows x cols global array. Every task must
// call Create in the same order with the same dimensions.
func (w *World) Create(ctx exec.Context, rows, cols int) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("ga: Create(%d,%d): dimensions must be positive", rows, cols)
	}
	gr, gc := processGrid(w.N())
	a := &Array{
		w:      w,
		handle: len(w.arrays),
		rows:   rows,
		cols:   cols,
		gridR:  gr,
		gridC:  gc,
		blockR: ceilDiv(rows, gr),
		blockC: ceilDiv(cols, gc),
	}
	w.arrays = append(w.arrays, a)
	if err := w.b.createArray(ctx, a); err != nil {
		return nil, err
	}
	return a, nil
}

// processGrid factors n into the most square r x c grid with r*c == n.
func processGrid(n int) (r, c int) {
	r = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			r = d
		}
	}
	return r, n / r
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Dims returns the global dimensions.
func (a *Array) Dims() (rows, cols int) { return a.rows, a.cols }

// Handle returns the array's SPMD-wide identifier.
func (a *Array) Handle() int { return a.handle }

// Distribution returns the patch owned by rank (possibly empty at the
// grid's ragged edge) — GA's full locality information (§5.1).
func (a *Array) Distribution(rank int) Patch {
	gr, gc := rank/a.gridC, rank%a.gridC
	p := Patch{
		RLo: gr * a.blockR, RHi: min((gr+1)*a.blockR, a.rows) - 1,
		CLo: gc * a.blockC, CHi: min((gc+1)*a.blockC, a.cols) - 1,
	}
	return p
}

// Owner returns the rank owning element (i, j).
func (a *Array) Owner(i, j int) int {
	return (i/a.blockR)*a.gridC + j/a.blockC
}

// checkPatch validates patch bounds against the array.
func (a *Array) checkPatch(p Patch) error {
	if p.Empty() {
		return fmt.Errorf("ga: empty patch %v", p)
	}
	if p.RLo < 0 || p.CLo < 0 || p.RHi >= a.rows || p.CHi >= a.cols {
		return fmt.Errorf("ga: patch %v outside %dx%d array", p, a.rows, a.cols)
	}
	return nil
}

// subRequest is one per-owner piece of a decomposed request.
type subRequest struct {
	owner int
	sub   Patch
}

// decompose splits a patch into per-owner subpatches. With a block
// distribution a rectangular patch intersects each owner in at most one
// rectangle.
func (a *Array) decompose(p Patch) []subRequest {
	var subs []subRequest
	for gr := p.RLo / a.blockR; gr <= p.RHi/a.blockR && gr < a.gridR; gr++ {
		for gc := p.CLo / a.blockC; gc <= p.CHi/a.blockC && gc < a.gridC; gc++ {
			owner := gr*a.gridC + gc
			sub := p.intersect(a.Distribution(owner))
			if !sub.Empty() {
				subs = append(subs, subRequest{owner: owner, sub: sub})
			}
		}
	}
	return subs
}

// bufOffset returns the index in a request buffer (with leading dimension
// ld, describing patch p) of subpatch sub's top-left element.
func bufOffset(p, sub Patch, ld int) int {
	return (sub.RLo-p.RLo)*ld + (sub.CLo - p.CLo)
}

// Put copies buf (row-major, leading dimension ld) into the array section
// p. One-sided and non-blocking in the GA sense: it returns when buf is
// reusable; completion at the target is covered by Fence/Sync.
func (a *Array) Put(ctx exec.Context, p Patch, buf []float64, ld int) error {
	if err := a.checkRequest(p, buf, ld); err != nil {
		return err
	}
	a.w.chargeRequest(ctx)
	for _, s := range a.decompose(p) {
		if err := a.w.b.put(ctx, a, s.owner, s.sub, buf, ld, bufOffset(p, s.sub, ld)); err != nil {
			return err
		}
	}
	return nil
}

// Get copies the array section p into buf (row-major, leading dimension
// ld). Blocking: the data is present when Get returns (§5.4).
func (a *Array) Get(ctx exec.Context, p Patch, buf []float64, ld int) error {
	if err := a.checkRequest(p, buf, ld); err != nil {
		return err
	}
	a.w.chargeRequest(ctx)
	for _, s := range a.decompose(p) {
		if err := a.w.b.get(ctx, a, s.owner, s.sub, buf, ld, bufOffset(p, s.sub, ld)); err != nil {
			return err
		}
	}
	return nil
}

// Acc atomically accumulates alpha*buf into the array section p (the
// commutative DAXPY-like reduction of §5.1); concurrent Accs to
// overlapping sections are safe and order-free.
func (a *Array) Acc(ctx exec.Context, p Patch, buf []float64, ld int, alpha float64) error {
	if err := a.checkRequest(p, buf, ld); err != nil {
		return err
	}
	a.w.chargeRequest(ctx)
	for _, s := range a.decompose(p) {
		if err := a.w.b.acc(ctx, a, s.owner, s.sub, buf, ld, bufOffset(p, s.sub, ld), alpha); err != nil {
			return err
		}
	}
	return nil
}

func (a *Array) checkRequest(p Patch, buf []float64, ld int) error {
	if err := a.checkPatch(p); err != nil {
		return err
	}
	if ld < p.Cols() {
		return fmt.Errorf("ga: leading dimension %d < patch width %d", ld, p.Cols())
	}
	need := (p.Rows()-1)*ld + p.Cols()
	if len(buf) < need {
		return fmt.Errorf("ga: buffer of %d elements too small for patch %v with ld %d (need %d)", len(buf), p, ld, need)
	}
	return nil
}

// Scatter writes vals[k] to element (rows[k], cols[k]) for every k —
// irregular one-sided updates (§5.1).
func (a *Array) Scatter(ctx exec.Context, rows, cols []int, vals []float64) error {
	groups, err := a.groupSubscripts(rows, cols, vals != nil && len(vals) == len(rows))
	if err != nil {
		return err
	}
	if len(vals) != len(rows) {
		return fmt.Errorf("ga: Scatter: %d values for %d subscripts", len(vals), len(rows))
	}
	for owner, g := range groups {
		v := make([]float64, len(g.ks))
		for i, k := range g.ks {
			v[i] = vals[k]
		}
		if err := a.w.b.scatter(ctx, a, owner, g.idx, v); err != nil {
			return err
		}
	}
	return nil
}

// Gather reads element (rows[k], cols[k]) into out[k] for every k.
// Blocking, like Get.
func (a *Array) Gather(ctx exec.Context, rows, cols []int, out []float64) error {
	groups, err := a.groupSubscripts(rows, cols, true)
	if err != nil {
		return err
	}
	if len(out) != len(rows) {
		return fmt.Errorf("ga: Gather: %d outputs for %d subscripts", len(out), len(rows))
	}
	for owner, g := range groups {
		vals := make([]float64, len(g.ks))
		if err := a.w.b.gather(ctx, a, owner, g.idx, vals); err != nil {
			return err
		}
		for i, k := range g.ks {
			out[k] = vals[i]
		}
	}
	return nil
}

type subscriptGroup struct {
	idx []int32 // flattened local (i,j) pairs: i0,j0,i1,j1,...
	ks  []int   // positions in the caller's arrays
}

func (a *Array) groupSubscripts(rows, cols []int, _ bool) (map[int]*subscriptGroup, error) {
	if len(rows) != len(cols) {
		return nil, fmt.Errorf("ga: %d row subscripts vs %d col subscripts", len(rows), len(cols))
	}
	groups := make(map[int]*subscriptGroup)
	for k := range rows {
		i, j := rows[k], cols[k]
		if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
			return nil, fmt.Errorf("ga: subscript (%d,%d) outside %dx%d array", i, j, a.rows, a.cols)
		}
		owner := a.Owner(i, j)
		g := groups[owner]
		if g == nil {
			g = &subscriptGroup{}
			groups[owner] = g
		}
		g.idx = append(g.idx, int32(i), int32(j))
		g.ks = append(g.ks, k)
	}
	return groups, nil
}

// At reads local element (i, j) of the array (global indices; must be owned
// by this task). GA's Access-style local view.
func (a *Array) At(i, j int) float64 {
	a.mustOwnLocal(i, j)
	return a.w.b.localRead(a, i, j)
}

// SetLocal writes local element (i, j) (global indices; must be owned by
// this task).
func (a *Array) SetLocal(i, j int, v float64) {
	a.mustOwnLocal(i, j)
	a.w.b.localWrite(a, i, j, v)
}

func (a *Array) mustOwnLocal(i, j int) {
	if a.Owner(i, j) != a.w.Self() {
		panic(fmt.Sprintf("ga: element (%d,%d) owned by rank %d, not %d", i, j, a.Owner(i, j), a.w.Self()))
	}
}

// chargeRequest applies the per-operation GA software overhead.
func (w *World) chargeRequest(ctx exec.Context) {
	if w.cfg.RequestOverhead > 0 {
		ctx.Sleep(w.cfg.RequestOverhead)
	}
}

// Fence blocks until all operations this task initiated have completed at
// their targets (§5.3.2).
func (w *World) Fence(ctx exec.Context) error { return w.b.fence(ctx) }

// Sync is GA's barrier: a fence plus a global barrier. On return, all
// operations issued by all tasks before their Sync are complete.
func (w *World) Sync(ctx exec.Context) error {
	if err := w.b.fence(ctx); err != nil {
		return err
	}
	return w.b.barrier(ctx)
}

// SharedCounter is an atomically updatable global integer (GA's
// read-and-increment, the dynamic load-balancing primitive of §5.1). It is
// hosted on one rank, round-robin by creation order.
type SharedCounter struct {
	w     *World
	id    int
	owner int
	// backend-specific location.
	loc uint64
}

// CreateCounter collectively creates a shared counter initialized to zero.
func (w *World) CreateCounter(ctx exec.Context) (*SharedCounter, error) {
	c := &SharedCounter{w: w, id: w.counters, owner: w.counters % w.N()}
	w.counters++
	if err := w.b.newCounter(ctx, c); err != nil {
		return nil, err
	}
	return c, nil
}

// ReadInc atomically adds inc to the counter and returns the PREVIOUS
// value.
func (c *SharedCounter) ReadInc(ctx exec.Context, inc int64) (int64, error) {
	return c.w.b.readInc(ctx, c, inc)
}

// MutexSet is a collectively created set of global mutexes (§5.1's lock
// operations), distributed round-robin across ranks.
type MutexSet struct {
	w    *World
	id   int
	n    int
	locs []uint64 // backend-specific per-mutex locations
}

// CreateMutexes collectively creates n global mutexes.
func (w *World) CreateMutexes(ctx exec.Context, n int) (*MutexSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ga: CreateMutexes(%d)", n)
	}
	m := &MutexSet{w: w, id: w.mutexSets, n: n}
	w.mutexSets++
	if err := w.b.newMutexes(ctx, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Lock acquires mutex i, blocking until available.
func (m *MutexSet) Lock(ctx exec.Context, i int) error {
	if i < 0 || i >= m.n {
		return fmt.Errorf("ga: Lock(%d): %d mutexes", i, m.n)
	}
	return m.w.b.lock(ctx, m, i)
}

// Unlock releases mutex i.
func (m *MutexSet) Unlock(ctx exec.Context, i int) error {
	if i < 0 || i >= m.n {
		return fmt.Errorf("ga: Unlock(%d): %d mutexes", i, m.n)
	}
	return m.w.b.unlock(ctx, m, i)
}

// mutexOwner returns the rank hosting mutex i of set m.
func (m *MutexSet) mutexOwner(i int) int { return (m.id + i) % m.w.N() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
