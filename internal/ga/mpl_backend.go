package ga

import (
	"encoding/binary"
	"fmt"

	"golapi/internal/exec"
	"golapi/internal/mpi"
	"golapi/internal/mpl"
)

// Extra opcodes for the MPL backend's request server.
const (
	gaReadInc byte = iota + 16
	gaLock
	gaUnlock
	gaFencePing
)

// Reserved user tags for GA-over-MPL traffic (below mpi.MaxTag).
const (
	tagGAReq = 0xF000
	tagGARep = 0xF001
)

// mplArrayInfo is the MPL backend's per-array state: the local block lives
// in ordinary memory (no remote memory copy exists to target it).
type mplArrayInfo struct {
	local Patch
	block []byte
}

// mutexState is a hosted global mutex with its FIFO wait queue.
type mutexState struct {
	held  bool
	queue []int // ranks waiting for a grant
}

// mplBackend implements the paper's §5.2 baseline: every GA operation is a
// request message served by an interrupt-driven rcvncall handler at the
// owner. MPL's in-order progress rules force the request header and data
// into a single message, so every put/accumulate pays a sender-side pack of
// header+data (§5.4), and gets pay a packed reply.
type mplBackend struct {
	w   *World
	t   *mpl.Task
	cfg Config

	arrays map[int]*mplArrayInfo

	serveBuf []byte

	// Server-hosted synchronization state, created lazily on first use
	// (ids are SPMD-consistent).
	counters map[int]*int64
	mutexes  map[[2]int]*mutexState

	// touched[r] records requests sent to r since the last fence; fence
	// flushes them with a ping, relying on MPL's in-order delivery.
	touched []bool
}

// NewMPLWorld collectively creates a GA runtime over MPL (the baseline the
// paper compares against). The MPL configuration should use the maximum
// eager limit: the paper attributes the baseline's early put advantage to
// MPL's "much larger buffer space".
func NewMPLWorld(ctx exec.Context, t *mpl.Task, cfg Config) (*World, error) {
	if cfg.MaxRequestBytes <= gaHdrSize {
		return nil, fmt.Errorf("ga: MaxRequestBytes=%d too small", cfg.MaxRequestBytes)
	}
	b := &mplBackend{
		t:        t,
		cfg:      cfg,
		arrays:   make(map[int]*mplArrayInfo),
		counters: make(map[int]*int64),
		mutexes:  make(map[[2]int]*mutexState),
		touched:  make([]bool, t.N()),
		serveBuf: make([]byte, cfg.MaxRequestBytes),
	}
	w := &World{cfg: cfg, b: b}
	b.w = w
	if err := t.Rcvncall(ctx, mpi.AnySource, tagGAReq, b.serveBuf, b.serve); err != nil {
		return nil, err
	}
	if err := t.Barrier(ctx); err != nil {
		return nil, err
	}
	return w, nil
}

func (b *mplBackend) self() int { return b.t.Self() }
func (b *mplBackend) n() int    { return b.t.N() }

func (b *mplBackend) info(handle int) *mplArrayInfo {
	in := b.arrays[handle]
	if in == nil {
		panic(fmt.Sprintf("ga: unknown array handle %d on rank %d", handle, b.self()))
	}
	return in
}

func (b *mplBackend) createArray(ctx exec.Context, a *Array) error {
	local := a.Distribution(b.self())
	size := 0
	if !local.Empty() {
		size = local.Elems() * 8
	}
	b.arrays[a.handle] = &mplArrayInfo{local: local, block: make([]byte, size)}
	return b.t.Barrier(ctx)
}

// request sends one GA request message (header and data packed together —
// the copy MPL's progress rules make unavoidable, §5.4) and marks the
// destination for fencing.
func (b *mplBackend) request(ctx exec.Context, owner int, h gaHdr, data []byte) error {
	msg := make([]byte, gaHdrSize+len(data))
	if c := b.cfg.copyCost(len(msg)); c > 0 {
		ctx.Sleep(c)
	}
	copy(msg, h.encode())
	copy(msg[gaHdrSize:], data)
	b.touched[owner] = true
	return b.t.Send(ctx, owner, tagGAReq, msg)
}

// maxDataBytes is the largest data payload one request message may carry.
func (b *mplBackend) maxDataBytes() int { return b.cfg.MaxRequestBytes - gaHdrSize }

// --- put / acc ---------------------------------------------------------------

func (b *mplBackend) put(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	return b.sendPatches(ctx, gaPut, a, owner, sub, buf, ld, off, 0)
}

func (b *mplBackend) acc(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int, alpha float64) error {
	return b.sendPatches(ctx, gaAcc, a, owner, sub, buf, ld, off, alpha)
}

// sendPatches ships a put/acc as one request, split by rows when it exceeds
// the server's preallocated buffer. The MPL implementation "performs
// identically for the 1-D and 2-D requests" (§5.4): there is no direct
// path, everything packs.
func (b *mplBackend) sendPatches(ctx exec.Context, op byte, a *Array, owner int, sub Patch, buf []float64, ld, off int, alpha float64) error {
	rowBytes := sub.Cols() * 8
	if rowBytes > b.maxDataBytes() {
		// A single row exceeds the server buffer: split it by columns.
		colsPer := b.maxDataBytes() / 8
		for r := 0; r < sub.Rows(); r++ {
			for c0 := 0; c0 < sub.Cols(); c0 += colsPer {
				c1 := min(c0+colsPer, sub.Cols())
				chunk := Patch{
					RLo: sub.RLo + r, RHi: sub.RLo + r,
					CLo: sub.CLo + c0, CHi: sub.CLo + c1 - 1,
				}
				data := make([]byte, chunk.Elems()*8)
				packRow(data, buf, off+r*ld+c0, chunk.Cols())
				h := gaHdr{op: op, handle: uint16(a.handle), sub: chunk, alpha: alpha}
				if err := b.request(ctx, owner, h, data); err != nil {
					return err
				}
			}
		}
		return nil
	}
	rowsPer := b.maxDataBytes() / rowBytes
	for r0 := 0; r0 < sub.Rows(); r0 += rowsPer {
		r1 := min(r0+rowsPer, sub.Rows())
		chunk := Patch{RLo: sub.RLo + r0, RHi: sub.RLo + r1 - 1, CLo: sub.CLo, CHi: sub.CHi}
		data := make([]byte, chunk.Elems()*8)
		packPatch(data, buf, ld, off+r0*ld, chunk.Rows(), chunk.Cols())
		h := gaHdr{op: op, handle: uint16(a.handle), sub: chunk, alpha: alpha}
		if err := b.request(ctx, owner, h, data); err != nil {
			return err
		}
	}
	return nil
}

// --- get ----------------------------------------------------------------------

func (b *mplBackend) get(ctx exec.Context, a *Array, owner int, sub Patch, buf []float64, ld, off int) error {
	h := gaHdr{op: gaGetReq, handle: uint16(a.handle), sub: sub}
	if err := b.request(ctx, owner, h, nil); err != nil {
		return err
	}
	reply := make([]byte, sub.Elems()*8)
	if _, err := b.t.Recv(ctx, owner, tagGARep, reply); err != nil {
		return err
	}
	if sub.Contiguous() {
		// 1-D: decode straight into the user buffer — "the MPL
		// implementation is able to avoid one memory copy" (§5.4).
		unpackRow(buf, off, reply, sub.Cols())
		return nil
	}
	if c := b.cfg.copyCost(len(reply)); c > 0 {
		ctx.Sleep(c)
	}
	unpackPatch(buf, ld, off, reply, sub.Rows(), sub.Cols())
	return nil
}

// --- scatter / gather -----------------------------------------------------------

func (b *mplBackend) scatter(ctx exec.Context, a *Array, owner int, idx []int32, vals []float64) error {
	n := len(vals)
	data := make([]byte, n*16)
	for k := 0; k < n; k++ {
		binary.BigEndian.PutUint32(data[k*16:], uint32(idx[2*k]))
		binary.BigEndian.PutUint32(data[k*16+4:], uint32(idx[2*k+1]))
		putF64(data[k*16+8:], vals[k])
	}
	h := gaHdr{op: gaScatter, handle: uint16(a.handle), count: uint32(n)}
	return b.request(ctx, owner, h, data)
}

func (b *mplBackend) gather(ctx exec.Context, a *Array, owner int, idx []int32, out []float64) error {
	n := len(out)
	data := make([]byte, n*8)
	for k := 0; k < n; k++ {
		binary.BigEndian.PutUint32(data[k*8:], uint32(idx[2*k]))
		binary.BigEndian.PutUint32(data[k*8+4:], uint32(idx[2*k+1]))
	}
	h := gaHdr{op: gaGatherReq, handle: uint16(a.handle), count: uint32(n)}
	if err := b.request(ctx, owner, h, data); err != nil {
		return err
	}
	reply := make([]byte, n*8)
	if _, err := b.t.Recv(ctx, owner, tagGARep, reply); err != nil {
		return err
	}
	if c := b.cfg.copyCost(len(reply)); c > 0 {
		ctx.Sleep(c)
	}
	for k := range out {
		out[k] = getF64(reply[k*8:])
	}
	return nil
}

// --- counters / mutexes ------------------------------------------------------------

func (b *mplBackend) newCounter(ctx exec.Context, c *SharedCounter) error {
	// Server state is created lazily by id; the barrier only ensures all
	// ranks agree the counter exists before first use.
	return b.t.Barrier(ctx)
}

func (b *mplBackend) readInc(ctx exec.Context, c *SharedCounter, inc int64) (int64, error) {
	h := gaHdr{op: gaReadInc, handle: uint16(c.id)}
	h.sub.RLo = int(int32(inc >> 32))
	h.sub.RHi = int(int32(inc))
	if err := b.request(ctx, c.owner, h, nil); err != nil {
		return 0, err
	}
	reply := make([]byte, 8)
	if _, err := b.t.Recv(ctx, c.owner, tagGARep, reply); err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(reply)), nil
}

func (b *mplBackend) newMutexes(ctx exec.Context, m *MutexSet) error {
	return b.t.Barrier(ctx)
}

func (b *mplBackend) lock(ctx exec.Context, m *MutexSet, i int) error {
	h := gaHdr{op: gaLock, handle: uint16(m.id), count: uint32(i)}
	if err := b.request(ctx, m.mutexOwner(i), h, nil); err != nil {
		return err
	}
	// The grant arrives when the server hands us the mutex (immediately,
	// or after the current holder's unlock).
	grant := make([]byte, 1)
	_, err := b.t.Recv(ctx, m.mutexOwner(i), tagGARep, grant)
	return err
}

func (b *mplBackend) unlock(ctx exec.Context, m *MutexSet, i int) error {
	h := gaHdr{op: gaUnlock, handle: uint16(m.id), count: uint32(i)}
	return b.request(ctx, m.mutexOwner(i), h, nil)
}

// --- fence / barrier / local --------------------------------------------------------

// fence flushes every touched destination with a ping: MPL delivery and
// server processing are in order, so the ping's reply proves all earlier
// requests were applied.
func (b *mplBackend) fence(ctx exec.Context) error {
	for r := 0; r < b.n(); r++ {
		if !b.touched[r] {
			continue
		}
		h := gaHdr{op: gaFencePing}
		if err := b.request(ctx, r, h, nil); err != nil {
			return err
		}
		pong := make([]byte, 1)
		if _, err := b.t.Recv(ctx, r, tagGARep, pong); err != nil {
			return err
		}
		b.touched[r] = false
	}
	return nil
}

func (b *mplBackend) barrier(ctx exec.Context) error { return b.t.Barrier(ctx) }

func (b *mplBackend) localRead(a *Array, i, j int) float64 {
	in := b.info(a.handle)
	return getF64(in.block[blockIndex(in.local, i, j):])
}

func (b *mplBackend) localWrite(a *Array, i, j int, v float64) {
	in := b.info(a.handle)
	putF64(in.block[blockIndex(in.local, i, j):], v)
}

// --- the request server --------------------------------------------------------------

// serve is the rcvncall handler (§5.2): it runs in the modelled interrupt
// context, applies one request, replies if needed, and re-posts itself.
// Because the re-post happens at the end, handler executions are strictly
// sequential in arrival order — which is also what makes accumulate atomic
// on the baseline (the role lockrnc played in the original).
func (b *mplBackend) serve(ctx exec.Context, st mpi.Status) {
	h := decodeGaHdr(b.serveBuf)
	data := b.serveBuf[gaHdrSize:st.Len]
	src := st.Source

	switch h.op {
	case gaPut:
		in := b.info(int(h.handle))
		// The handler copy from the message buffer into local memory
		// (§5.2: "the handler copied the data from the message buffer
		// to local memory").
		if c := b.cfg.copyCost(len(data)); c > 0 {
			ctx.Sleep(c)
		}
		storeInto(in.block, in.local, h.sub, data)

	case gaAcc:
		in := b.info(int(h.handle))
		if c := b.cfg.copyCost(len(data)); c > 0 {
			ctx.Sleep(c)
		}
		accumulateInto(in.block, in.local, h.sub, data, h.alpha)

	case gaGetReq:
		in := b.info(int(h.handle))
		reply := make([]byte, h.sub.Elems()*8)
		// Copy into the reply message buffer (§5.2: "copied data from
		// the local memory ... to another message buffer").
		if c := b.cfg.copyCost(len(reply)); c > 0 {
			ctx.Sleep(c)
		}
		loadFrom(reply, in.block, in.local, h.sub)
		b.reply(ctx, src, reply)

	case gaScatter:
		in := b.info(int(h.handle))
		if c := b.cfg.copyCost(len(data)); c > 0 {
			ctx.Sleep(c)
		}
		for k := 0; k < int(h.count); k++ {
			i := int(int32(binary.BigEndian.Uint32(data[k*16:])))
			j := int(int32(binary.BigEndian.Uint32(data[k*16+4:])))
			putF64(in.block[blockIndex(in.local, i, j):], getF64(data[k*16+8:]))
		}

	case gaGatherReq:
		in := b.info(int(h.handle))
		reply := make([]byte, int(h.count)*8)
		if c := b.cfg.copyCost(len(reply)); c > 0 {
			ctx.Sleep(c)
		}
		for k := 0; k < int(h.count); k++ {
			i := int(int32(binary.BigEndian.Uint32(data[k*8:])))
			j := int(int32(binary.BigEndian.Uint32(data[k*8+4:])))
			copy(reply[k*8:], in.block[blockIndex(in.local, i, j):blockIndex(in.local, i, j)+8])
		}
		b.reply(ctx, src, reply)

	case gaReadInc:
		id := int(h.handle)
		if b.counters[id] == nil {
			v := int64(0)
			b.counters[id] = &v
		}
		inc := int64(h.sub.RLo)<<32 | int64(uint32(int32(h.sub.RHi)))
		old := *b.counters[id]
		*b.counters[id] += inc
		reply := make([]byte, 8)
		binary.BigEndian.PutUint64(reply, uint64(old))
		b.reply(ctx, src, reply)

	case gaLock:
		key := [2]int{int(h.handle), int(h.count)}
		ms := b.mutexes[key]
		if ms == nil {
			ms = &mutexState{}
			b.mutexes[key] = ms
		}
		if !ms.held {
			ms.held = true
			b.reply(ctx, src, []byte{1})
		} else {
			ms.queue = append(ms.queue, src)
		}

	case gaUnlock:
		key := [2]int{int(h.handle), int(h.count)}
		ms := b.mutexes[key]
		if ms == nil || !ms.held {
			panic(fmt.Sprintf("ga: rank %d: unlock of free mutex %v", b.self(), key))
		}
		if len(ms.queue) > 0 {
			next := ms.queue[0]
			ms.queue = ms.queue[1:]
			b.reply(ctx, next, []byte{1})
		} else {
			ms.held = false
		}

	case gaFencePing:
		b.reply(ctx, src, []byte{1})

	default:
		panic(fmt.Sprintf("ga: rank %d: bad MPL request op %d", b.self(), h.op))
	}

	// Re-post the service receive: the next request becomes eligible
	// only now, serializing handlers.
	if err := b.t.Rcvncall(ctx, mpi.AnySource, tagGAReq, b.serveBuf, b.serve); err != nil {
		panic(fmt.Sprintf("ga: rank %d: rcvncall repost: %v", b.self(), err))
	}
}

func (b *mplBackend) reply(ctx exec.Context, dst int, data []byte) {
	if err := b.t.Send(ctx, dst, tagGARep, data); err != nil {
		panic(fmt.Sprintf("ga: rank %d: reply to %d: %v", b.self(), dst, err))
	}
}
