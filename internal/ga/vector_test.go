package ga_test

import (
	"testing"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
)

// runVectorWorld runs a LAPI GA world with the §6 vector-ops extension on.
func runVectorWorld(t *testing.T, n int, main func(ctx exec.Context, w *ga.World)) {
	t.Helper()
	c, err := cluster.NewSimDefault(n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ga.DefaultConfig()
	cfg.UseVectorOps = true
	if err := c.Run(func(ctx exec.Context, lt *lapi.Task) {
		w, err := ga.NewLAPIWorld(ctx, lt, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		main(ctx, w)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorOpsPutGet2D(t *testing.T) {
	runVectorWorld(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 64, 64)
		p := ga.Patch{RLo: 3, RHi: 60, CLo: 5, CHi: 58} // spans all owners
		if w.Self() == 0 {
			buf := make([]float64, p.Elems())
			for k := range buf {
				buf[k] = float64(k)*0.5 + 1
			}
			if err := a.Put(ctx, p, buf, p.Cols()); err != nil {
				t.Error(err)
			}
		}
		w.Sync(ctx)
		if w.Self() == 2 {
			got := make([]float64, p.Elems())
			if err := a.Get(ctx, p, got, p.Cols()); err != nil {
				t.Error(err)
			}
			for k := range got {
				if got[k] != float64(k)*0.5+1 {
					t.Errorf("element %d = %g", k, got[k])
					return
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestVectorOpsWithLeadingDimension(t *testing.T) {
	runVectorWorld(t, 4, func(ctx exec.Context, w *ga.World) {
		a, _ := w.Create(ctx, 32, 32)
		p := ga.Patch{RLo: 2, RHi: 13, CLo: 4, CHi: 11}
		const ld = 17
		if w.Self() == 1 {
			buf := make([]float64, p.Rows()*ld)
			for r := 0; r < p.Rows(); r++ {
				for c := 0; c < p.Cols(); c++ {
					buf[r*ld+c] = float64(1000*r + c)
				}
			}
			a.Put(ctx, p, buf, ld)
		}
		w.Sync(ctx)
		if w.Self() == 3 {
			got := make([]float64, p.Rows()*ld)
			a.Get(ctx, p, got, ld)
			for r := 0; r < p.Rows(); r++ {
				for c := 0; c < p.Cols(); c++ {
					if got[r*ld+c] != float64(1000*r+c) {
						t.Errorf("(%d,%d) = %g", r, c, got[r*ld+c])
						return
					}
				}
			}
		}
		w.Sync(ctx)
	})
}

func TestVectorOpsMatchAMResults(t *testing.T) {
	// The two protocol stacks must be observationally identical: run the
	// same update pattern under both and compare full array contents.
	pattern := func(useVec bool) []float64 {
		var out []float64
		c, err := cluster.NewSimDefault(4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ga.DefaultConfig()
		cfg.UseVectorOps = useVec
		if err := c.Run(func(ctx exec.Context, lt *lapi.Task) {
			w, err := ga.NewLAPIWorld(ctx, lt, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			a, _ := w.Create(ctx, 40, 40)
			// Every rank writes a disjoint 2-D band (concurrent puts
			// to overlapping regions would be legitimately undefined,
			// §2.5), then accumulates into it.
			me := w.Self()
			p := ga.Patch{RLo: me * 10, RHi: me*10 + 9, CLo: 1, CHi: 38}
			buf := make([]float64, p.Elems())
			for k := range buf {
				buf[k] = float64(me*1000 + k)
			}
			a.Put(ctx, p, buf, p.Cols())
			w.Sync(ctx)
			ones := make([]float64, p.Elems())
			for k := range ones {
				ones[k] = 1
			}
			a.Acc(ctx, p, ones, p.Cols(), float64(me+1))
			w.Sync(ctx)
			if w.Self() == 0 {
				full := ga.Patch{RLo: 0, RHi: 39, CLo: 0, CHi: 39}
				out = make([]float64, full.Elems())
				a.Get(ctx, full, out, full.Cols())
			}
			w.Sync(ctx)
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	am := pattern(false)
	vec := pattern(true)
	if len(am) != len(vec) {
		t.Fatal("length mismatch")
	}
	for i := range am {
		if am[i] != vec[i] {
			t.Fatalf("element %d differs: AM path %g, vector path %g", i, am[i], vec[i])
		}
	}
}
