package tcpnet_test

import (
	"sync"
	"testing"

	"golapi/internal/exec"
	"golapi/internal/lapi"
	"golapi/internal/tcpnet"
)

// TestPoolHammerAcrossMeshes builds and tears down several TCP meshes in
// sequence, all drawing wire buffers from the shared package-level pool,
// with a tiny MaxPacket so every message chunks into many frames (put
// chunking, AM reassembly, ack traffic). Data is patterned per round and
// verified at the target, so a pooled buffer recycled while still
// referenced — the failure mode of the release-after-dispatch ownership
// contract — shows up as corruption, and `go test -race` sees any
// unsynchronized reuse between reader, dispatcher, and writer goroutines.
func TestPoolHammerAcrossMeshes(t *testing.T) {
	const (
		n       = 3
		rounds  = 4
		maxPkt  = 128  // 48-byte header => 80-byte payload per frame
		putLen  = 1000 // ~13 frames per put
		amLen   = 600  // header packet + ~8 data frames
		bufSize = 4096
	)
	pattern := func(round, src, i int) byte { return byte(round*31 + src*17 + i*7) }

	for round := 0; round < rounds; round++ {
		addrs, err := tcpnet.LocalAddrs(n)
		if err != nil {
			t.Fatal(err)
		}
		rts := make([]*exec.RealRuntime, n)
		eps := make([]*tcpnet.Endpoint, n)
		tasks := make([]*lapi.Task, n)
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			i := i
			rts[i] = exec.NewRealRuntime()
			wg.Add(1)
			go func() {
				defer wg.Done()
				ep, err := tcpnet.Dial(rts[i], i, n, addrs, maxPkt)
				if err != nil {
					errs[i] = err
					return
				}
				eps[i] = ep
				tasks[i], errs[i] = lapi.NewTask(rts[i], ep, lapi.ZeroCost())
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}

		amGot := make([][]byte, n)
		var amMu sync.Mutex
		var mainWg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			task := tasks[i]
			mainWg.Add(1)
			rts[i].Go("hammer-main", func(ctx exec.Context) {
				defer mainWg.Done()
				buf := task.Alloc(bufSize)
				h := task.RegisterHandler(func(tk *lapi.Task, info *lapi.AmInfo) (lapi.Addr, lapi.CompletionHandler) {
					dst := tk.Alloc(info.DataLen)
					return dst, func(cctx exec.Context, tk2 *lapi.Task) {
						amMu.Lock()
						amGot[tk2.Self()] = append([]byte(nil), tk2.MustBytes(dst, info.DataLen)...)
						amMu.Unlock()
					}
				})
				tAddrs, err := task.AddressInit(ctx, buf)
				if err != nil {
					t.Error(err)
					return
				}

				// Every rank puts a patterned block to its right neighbour
				// and Amsends a patterned payload to its left neighbour:
				// all links carry chunked traffic at once.
				putDst := (i + 1) % n
				putData := make([]byte, putLen)
				for k := range putData {
					putData[k] = pattern(round, i, k)
				}
				cmpl := task.NewCounter()
				if err := task.Put(ctx, putDst, tAddrs[putDst], putData, lapi.NoCounter, nil, cmpl); err != nil {
					t.Error(err)
				}

				amDst := (i + n - 1) % n
				amData := make([]byte, amLen)
				for k := range amData {
					amData[k] = pattern(round, i, k) ^ 0x5a
				}
				amCmpl := task.NewCounter()
				if err := task.Amsend(ctx, amDst, h, []byte{byte(round)}, amData, lapi.NoCounter, nil, amCmpl); err != nil {
					t.Error(err)
				}
				task.Waitcntr(ctx, cmpl, 1)
				task.Waitcntr(ctx, amCmpl, 1)
				task.Gfence(ctx)

				// The put landed from the left neighbour; verify the
				// pattern survived frame-by-frame pool recycling.
				src := (i + n - 1) % n
				got := task.MustBytes(buf, putLen)
				for k := 0; k < putLen; k++ {
					if got[k] != pattern(round, src, k) {
						t.Errorf("round %d rank %d: put byte %d = %#x, want %#x", round, i, k, got[k], pattern(round, src, k))
						break
					}
				}
				task.Barrier(ctx)
			})
		}
		mainWg.Wait()

		for i := range tasks {
			task := tasks[i]
			rts[i].Post(func() { task.Close() })
		}
		for _, ep := range eps {
			ep.Drain()
		}

		amMu.Lock()
		for i := 0; i < n; i++ {
			src := (i + 1) % n // rank i receives the AM from its right neighbour
			if len(amGot[i]) != amLen {
				t.Fatalf("round %d rank %d: AM payload %d bytes, want %d", round, i, len(amGot[i]), amLen)
			}
			for k, b := range amGot[i] {
				if b != pattern(round, src, k)^0x5a {
					t.Errorf("round %d rank %d: AM byte %d = %#x, want %#x", round, i, k, b, pattern(round, src, k)^0x5a)
					break
				}
			}
		}
		amMu.Unlock()
	}
}
