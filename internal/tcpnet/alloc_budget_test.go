//go:build !race

// Allocation budget for the real-TCP hot path. Race-detector builds are
// excluded: instrumentation changes allocation counts.

package tcpnet_test

import (
	"testing"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/lapi"
)

// tcpPutAllocBudget bounds steady-state allocations per synchronous
// 4-byte Put over loopback TCP, counted across all goroutines (origin
// dispatcher, write loop, reader, target). Measured 3.0 when the buffer
// pool landed (down from 10 before it); ~2x headroom so scheduler-
// dependent variance doesn't flake, while a return to per-packet
// make([]byte) (several allocs per message each way) still trips it.
const tcpPutAllocBudget = 6.0

func TestTCPPutAllocBudget(t *testing.T) {
	j, err := cluster.NewTCPLAPI(2, lapi.ZeroCost())
	if err != nil {
		t.Fatal(err)
	}
	var avg float64
	err = j.Run(func(ctx exec.Context, lt *lapi.Task) {
		buf := lt.Alloc(64)
		addrs, aerr := lt.AddressInit(ctx, buf)
		if aerr != nil {
			t.Error(aerr)
			return
		}
		if lt.Self() == 0 {
			src := []byte{1, 2, 3, 4}
			for i := 0; i < 32; i++ { // warm pools, connections, message maps
				lt.PutSync(ctx, 1, addrs[1], src, lapi.NoCounter)
			}
			avg = testing.AllocsPerRun(200, func() {
				lt.PutSync(ctx, 1, addrs[1], src, lapi.NoCounter)
			})
		}
		lt.Gfence(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg > tcpPutAllocBudget {
		t.Errorf("tcp 4-byte PutSync: %.1f allocs/op, budget %.1f — pooled hot path regressed", avg, tcpPutAllocBudget)
	}
	t.Logf("tcp 4-byte PutSync: %.1f allocs/op (budget %.1f)", avg, tcpPutAllocBudget)
}
