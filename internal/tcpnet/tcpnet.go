// Package tcpnet is the real-network transport: a full mesh of TCP
// connections carrying length-prefixed packets, implementing
// fabric.Transport. It lets the LAPI and MPI libraries run as actual
// distributed programs (one process per task, or several tasks in one
// process for local experimentation).
//
// TCP gives reliable in-order delivery — a strict superset of the
// guarantees the protocols need (they tolerate reordering). Latency
// fidelity to the SP switch is intentionally out of scope: the cost models
// are zeroed on this transport (lapi.ZeroCost / mpi.ZeroCost) and real CPU
// and network time is spent instead.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"golapi/internal/exec"
	"golapi/internal/fabric"
)

// DefaultMaxPacket is the default packet budget presented to protocols.
// Larger than the SP switch's 1 KB: TCP has no hardware packet size, and
// bigger packets amortize per-frame overhead.
const DefaultMaxPacket = 64 * 1024

// Frame buffers are pooled in three size classes so the read and write hot
// paths allocate nothing in steady state. The small class is the fast path
// for the ack/counter control frames that dominate packet counts; the big
// class matches DefaultMaxPacket. The pool is package-level and shared by
// every endpoint in the process: buffers sent between in-process ranks
// recirculate instead of ping-ponging through the garbage collector.
const (
	classSmall = 256
	classMid   = 4096
	classBig   = DefaultMaxPacket
	poolDepth  = 256 // max retained buffers per class
)

type bufPool struct {
	mu      sync.Mutex
	classes [3][][]byte
}

var pool bufPool

// classOf maps a requested length to a class index, or -1 when the request
// is bigger than the largest class.
func classOf(n int) int {
	switch {
	case n <= classSmall:
		return 0
	case n <= classMid:
		return 1
	case n <= classBig:
		return 2
	}
	return -1
}

// classCap is the buffer capacity of each class, which is also how put
// recognizes a poolable buffer.
var classCap = [3]int{classSmall, classMid, classBig}

// get returns a buffer of length n with unspecified contents.
func (p *bufPool) get(n int) []byte {
	ci := classOf(n)
	if ci < 0 {
		return make([]byte, n)
	}
	p.mu.Lock()
	if s := p.classes[ci]; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		p.classes[ci] = s[:len(s)-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]byte, n, classCap[ci])
}

// put recycles b if it came from the pool. Foreign buffers (caller-built
// slices handed to Send) are recognized by capacity and left to the GC.
func (p *bufPool) put(b []byte) {
	for ci, c := range classCap {
		if cap(b) != c {
			continue
		}
		b = b[:0]
		p.mu.Lock()
		if len(p.classes[ci]) < poolDepth {
			p.classes[ci] = append(p.classes[ci], b)
		}
		p.mu.Unlock()
		return
	}
}

// Endpoint is one task's attachment to the TCP mesh.
type Endpoint struct {
	rt        *exec.RealRuntime
	self, n   int
	maxPacket int

	// dispatchFn is the dispatch method value, bound once so the read loop
	// does not allocate a closure per frame.
	dispatchFn func(src int, data []byte)

	mu         sync.Mutex
	deliver    func(src int, data []byte)
	pending    []pendingPkt // frames that arrived before SetDeliver
	conns      []*conn      // by peer rank; conns[self] == nil
	closed     bool
	directDone func(src int, token uint64)
	posted     map[postKey]*region
	regionFree []*region // retired region records, reused by RecvInto
	wg         sync.WaitGroup
}

type pendingPkt struct {
	src  int
	data []byte
}

// Direct-lane wire format: a frame whose 4-byte length prefix has the high
// bit set carries (8-byte token, 4-byte offset, payload) and lands straight
// in the region pre-posted via RecvInto — the payload bytes never touch the
// frame pool on either side. The length counts subheader + payload, so a
// direct frame may exceed MaxPacket (writev and ReadFull handle any size).
const (
	directFlag      = 1 << 31
	directSubheader = 12
)

// postKey identifies a pre-posted landing region: the sending peer plus the
// protocol's transfer token.
type postKey struct {
	src   int
	token uint64
}

// region is one pre-posted landing buffer. recvd tracks direct bytes landed
// so far; the region retires (and the done upcall fires) at len(buf).
type region struct {
	buf   []byte
	recvd int
}

// conn is one peer connection with an outbound writer goroutine, so sends
// never block the caller's runtime lock.
type conn struct {
	c   net.Conn
	out chan outFrame
}

type outFrame struct {
	data []byte
	sent func()
	// direct marks a zero-copy frame: data is BORROWED from the caller
	// (never returned to the pool) and goes on the wire behind a
	// directFlag length prefix and (token, 0) subheader.
	direct bool
	token  uint64
}

var _ fabric.Transport = (*Endpoint)(nil)

// Dial builds the mesh for task self of n, where addrs[i] is task i's
// listen address. Each endpoint accepts connections from lower ranks and
// dials higher ranks, then handshakes with a 4-byte rank exchange. All
// endpoints must be constructed concurrently (their Dial calls
// rendezvous).
func Dial(rt *exec.RealRuntime, self, n int, addrs []string, maxPacket int) (*Endpoint, error) {
	if maxPacket <= 0 {
		maxPacket = DefaultMaxPacket
	}
	e := &Endpoint{
		rt:        rt,
		self:      self,
		n:         n,
		maxPacket: maxPacket,
		conns:     make([]*conn, n),
		posted:    make(map[postKey]*region),
	}
	e.dispatchFn = e.dispatch

	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rank %d listen: %w", self, err)
	}
	defer ln.Close()

	errs := make(chan error, n)
	var wg sync.WaitGroup

	// Accept from lower ranks.
	for i := 0; i < self; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := ln.Accept()
			if err != nil {
				errs <- err
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(c, hello[:]); err != nil {
				errs <- err
				return
			}
			peer := int(binary.BigEndian.Uint32(hello[:]))
			if peer < 0 || peer >= n {
				errs <- fmt.Errorf("tcpnet: bad hello rank %d", peer)
				return
			}
			e.mu.Lock()
			e.conns[peer] = newConn(c)
			e.mu.Unlock()
		}()
	}
	// Dial higher ranks.
	for i := self + 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := dialRetry(addrs[i])
			if err != nil {
				errs <- err
				return
			}
			var hello [4]byte
			binary.BigEndian.PutUint32(hello[:], uint32(self))
			if _, err := c.Write(hello[:]); err != nil {
				errs <- err
				return
			}
			e.mu.Lock()
			e.conns[i] = newConn(c)
			e.mu.Unlock()
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, fmt.Errorf("tcpnet: rank %d mesh: %w", self, err)
	default:
	}

	// Start reader and writer loops.
	for peer, cn := range e.conns {
		if cn == nil {
			continue
		}
		e.wg.Add(2)
		go e.readLoop(peer, cn)
		go e.writeLoop(cn)
	}
	return e, nil
}

// Dial-retry policy during mesh bring-up. Peers start their listeners
// concurrently, so early refusals are expected; backoff doubles from
// dialRetryBase to dialRetryCap (exponential, capped) so a slow peer is
// waited for without hammering the port, and dialRetryAttempts bounds the
// total wait (~2.3 s with the defaults) so a peer that never comes up
// turns into an error instead of an infinite retry loop.
const (
	dialRetryAttempts = 24
	dialRetryBase     = 1 * time.Millisecond
	dialRetryCap      = 200 * time.Millisecond
)

func dialRetry(addr string) (net.Conn, error) {
	return dialRetryWith(addr, dialRetryAttempts, dialRetryBase, dialRetryCap)
}

// dialRetryWith is dialRetry with the policy knobs exposed for tests.
func dialRetryWith(addr string, attempts int, base, cap time.Duration) (net.Conn, error) {
	var lastErr error
	backoff := base
	for i := 0; i < attempts; i++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if i == attempts-1 {
			break // don't sleep after the final attempt
		}
		// Dial-retry backoff during mesh bring-up: runs on a raw goroutine
		// before any activity exists, and the transport is real-TCP only.
		time.Sleep(backoff) //lapivet:ignore simdeterminism dial backoff predates the runtime; TCP transport never runs simulated
		backoff *= 2
		if backoff > cap {
			backoff = cap
		}
	}
	return nil, fmt.Errorf("tcpnet: dial %s: gave up after %d attempts: %w", addr, attempts, lastErr)
}

func newConn(c net.Conn) *conn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &conn{c: c, out: make(chan outFrame, 1024)}
}

// Self implements fabric.Transport.
func (e *Endpoint) Self() int { return e.self }

// N implements fabric.Transport.
func (e *Endpoint) N() int { return e.n }

// MaxPacket implements fabric.Transport.
func (e *Endpoint) MaxPacket() int { return e.maxPacket }

// Alloc implements fabric.Transport: a pooled buffer for an outbound
// packet, recycled by the write loop after the frame hits the wire.
func (e *Endpoint) Alloc(n int) []byte { return pool.get(n) }

// Release implements fabric.Transport: returns a delivered frame to the
// pool. The caller must not touch pkt afterwards.
func (e *Endpoint) Release(pkt []byte) { pool.put(pkt) }

// Contract implements fabric.Transport: both directions are pooled, and
// the zero-copy direct lane is live.
func (e *Endpoint) Contract() fabric.Contract {
	return fabric.Contract{PooledDelivery: true, PooledSend: true, Direct: true}
}

// SetDirectDone implements fabric.Transport.
func (e *Endpoint) SetDirectDone(fn func(src int, token uint64)) {
	e.mu.Lock()
	e.directDone = fn
	e.mu.Unlock()
}

// RecvInto implements fabric.Transport: posts buf as the landing region for
// direct frames from (src, token). The protocol's control handshake orders
// this before the matching SendDirect, so a frame never races its region.
func (e *Endpoint) RecvInto(src int, token uint64, buf []byte) {
	fabric.CheckRank(src, e.n)
	e.mu.Lock()
	r := e.newRegionLocked(buf)
	e.posted[postKey{src: src, token: token}] = r
	e.mu.Unlock()
}

// newRegionLocked takes a region record from the freelist (e.mu held).
func (e *Endpoint) newRegionLocked(buf []byte) *region {
	if n := len(e.regionFree); n > 0 {
		r := e.regionFree[n-1]
		e.regionFree[n-1] = nil
		e.regionFree = e.regionFree[:n-1]
		r.buf, r.recvd = buf, 0
		return r
	}
	return &region{buf: buf}
}

// SendDirect implements fabric.Transport: the payload rides the peer's
// writer as a single borrowed frame — writev gathers it straight from the
// caller's slice, and the write loop never returns it to the pool.
func (e *Endpoint) SendDirect(ctx exec.Context, dst int, token uint64, payload []byte, sent func()) {
	fabric.CheckRank(dst, e.n)
	if dst == e.self {
		// Loopback: land the bytes in the posted region directly. One copy
		// (there is no wire to elide it on) on a path protocols rarely take.
		e.rt.After(0, func() {
			e.mu.Lock()
			k := postKey{src: e.self, token: token}
			r := e.posted[k]
			var done func(src int, token uint64)
			if r != nil {
				copy(r.buf, payload)
				delete(e.posted, k)
				r.buf = nil
				e.regionFree = append(e.regionFree, r)
				done = e.directDone
			}
			e.mu.Unlock()
			if sent != nil {
				sent()
			}
			if done != nil {
				done(e.self, token)
			}
		})
		return
	}
	e.mu.Lock()
	cn := e.conns[dst]
	closed := e.closed
	e.mu.Unlock()
	if closed || cn == nil {
		return // drops after close, like a downed link
	}
	cn.out <- outFrame{data: payload, sent: sent, direct: true, token: token}
}

// SetDeliver implements fabric.Transport, flushing any frames that raced
// ahead of task construction.
func (e *Endpoint) SetDeliver(fn func(src int, data []byte)) {
	e.mu.Lock()
	pending := e.pending
	e.pending = nil
	e.deliver = fn
	e.mu.Unlock()
	for _, p := range pending {
		e.rt.Post(func() { fn(p.src, p.data) })
	}
}

// Send implements fabric.Transport. The frame is queued on the peer's
// writer; sent fires (serialized on the runtime) once it has been written
// to the socket.
func (e *Endpoint) Send(ctx exec.Context, dst int, data []byte, sent func()) {
	fabric.CheckRank(dst, e.n)
	if len(data) > e.maxPacket {
		panic(fmt.Sprintf("tcpnet: packet of %d bytes exceeds MaxPacket=%d", len(data), e.maxPacket))
	}
	if dst == e.self {
		// Loopback without touching the network and without copying: Send
		// owns data, and the receiver returns it to the pool via Release.
		// Deliver asynchronously to preserve Send's non-blocking contract.
		e.rt.After(0, func() {
			if sent != nil {
				sent()
			}
			e.dispatch(e.self, data)
		})
		return
	}
	e.mu.Lock()
	cn := e.conns[dst]
	closed := e.closed
	e.mu.Unlock()
	if closed || cn == nil {
		return // drops after close, like a downed link
	}
	cn.out <- outFrame{data: data, sent: sent}
}

// writeBatch is the most frames one writev gathers. A pooled frame
// contributes two iovec entries (length prefix + payload); a direct frame
// contributes three (prefix + subheader + borrowed payload).
const writeBatch = 16

func (e *Endpoint) writeLoop(cn *conn) {
	defer e.wg.Done()
	// Closing the socket here — after the outbound queue has drained —
	// guarantees frames queued before Close (e.g. a final barrier
	// release) are flushed, and unblocks the peer-facing read loop.
	defer cn.c.Close()
	var (
		lens   [writeBatch][4]byte
		subs   [writeBatch][directSubheader]byte
		frames [writeBatch]outFrame
		iovBuf [3 * writeBatch][]byte
		iov    net.Buffers // declared here: WriteTo takes its address, so an in-loop variable would heap-escape per batch
	)
	for f := range cn.out {
		// Gather whatever else is already queued, then emit the batch as a
		// single writev: one syscall per batch instead of two per frame,
		// and no cross-frame coalescing latency.
		frames[0] = f
		nf := 1
	gather:
		for nf < writeBatch {
			select {
			case f2, ok := <-cn.out:
				if !ok {
					break gather // closed: flush this batch, outer loop exits
				}
				frames[nf] = f2
				nf++
			default:
				break gather // queue empty: never delay a frame to batch
			}
		}
		// WriteTo consumes the Buffers slice it is handed, so build each
		// batch over a fixed backing array rather than reusing the slice
		// header (reuse after consumption would reallocate every batch).
		iov = iovBuf[:0]
		for i := 0; i < nf; i++ {
			if frames[i].direct {
				binary.BigEndian.PutUint32(lens[i][:], directFlag|uint32(directSubheader+len(frames[i].data)))
				binary.BigEndian.PutUint64(subs[i][0:8], frames[i].token)
				binary.BigEndian.PutUint32(subs[i][8:12], 0)
				iov = append(iov, lens[i][:], subs[i][:], frames[i].data)
			} else {
				binary.BigEndian.PutUint32(lens[i][:], uint32(len(frames[i].data)))
				iov = append(iov, lens[i][:], frames[i].data)
			}
		}
		nv := len(iov)
		if _, err := iov.WriteTo(cn.c); err != nil {
			// The batch dies with the connection, but pooled frame buffers
			// must still go back (the senders handed ownership over). Direct
			// payloads are borrowed, never pooled: leave them to the caller.
			for i := 0; i < nf; i++ {
				if !frames[i].direct {
					pool.put(frames[i].data)
				}
				frames[i] = outFrame{}
			}
			return
		}
		clear(iovBuf[:nv])
		for i := 0; i < nf; i++ {
			if !frames[i].direct {
				pool.put(frames[i].data)
			}
			if frames[i].sent != nil {
				e.rt.Post(frames[i].sent)
			}
			frames[i] = outFrame{}
		}
	}
}

func (e *Endpoint) readLoop(peer int, cn *conn) {
	defer e.wg.Done()
	var lenBuf [4]byte
	var sub [directSubheader]byte // hoisted: ReadFull's interface call would heap-escape a per-call array
	for {
		if _, err := io.ReadFull(cn.c, lenBuf[:]); err != nil {
			return
		}
		raw := binary.BigEndian.Uint32(lenBuf[:])
		if raw&directFlag != 0 {
			if !e.readDirect(peer, cn, sub[:], int(raw&^directFlag)) {
				return
			}
			continue
		}
		n := raw
		if int(n) > e.maxPacket {
			return // corrupt stream; drop the connection
		}
		data := pool.get(int(n))
		if _, err := io.ReadFull(cn.c, data); err != nil {
			pool.put(data)
			return
		}
		// The receiver owns data until it calls Release (Contract).
		e.rt.PostPacket(e.dispatchFn, peer, data)
	}
}

// readDirect lands one direct frame straight into its pre-posted region:
// subheader, then a ReadFull whose destination IS the user buffer — the
// payload never touches the frame pool. Returns false to drop the
// connection (missing region or out-of-bounds placement means a corrupt or
// misbehaving peer; the causal RTS/CTS handshake rules those out for
// well-formed traffic).
func (e *Endpoint) readDirect(peer int, cn *conn, sub []byte, n int) bool {
	if n < directSubheader {
		return false
	}
	if _, err := io.ReadFull(cn.c, sub); err != nil {
		return false
	}
	token := binary.BigEndian.Uint64(sub[0:8])
	off := int(binary.BigEndian.Uint32(sub[8:12]))
	plen := n - directSubheader
	k := postKey{src: peer, token: token}
	e.mu.Lock()
	r := e.posted[k]
	var buf []byte
	if r != nil {
		// Snapshot the landing buffer while holding mu: the loopback
		// SendDirect timer nils and recycles r.buf under the same lock, so
		// the field must not be re-read after the unlock.
		buf = r.buf
	}
	e.mu.Unlock()
	if r == nil || off < 0 || off+plen > len(buf) {
		return false
	}
	if _, err := io.ReadFull(cn.c, buf[off:off+plen]); err != nil {
		return false
	}
	e.mu.Lock()
	r.recvd += plen
	complete := r.recvd >= len(buf)
	var done func(src int, token uint64)
	if complete {
		delete(e.posted, k)
		r.buf = nil
		e.regionFree = append(e.regionFree, r)
		done = e.directDone
	}
	e.mu.Unlock()
	if complete && done != nil {
		// Serialized on the runtime; the mutex hand-off orders the payload
		// writes above before any reader that observes the completion.
		e.rt.PostDone(done, peer, token)
	}
	return true
}

// dispatch hands a frame to the deliver callback, or stashes it if the
// callback is not installed yet. Runs serialized on the runtime.
func (e *Endpoint) dispatch(src int, data []byte) {
	e.mu.Lock()
	fn := e.deliver
	if fn == nil {
		e.pending = append(e.pending, pendingPkt{src: src, data: data})
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	fn(src, data)
}

// Close implements fabric.Transport: tears down the mesh.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := append([]*conn(nil), e.conns...)
	e.mu.Unlock()
	// Closing the queue lets each writer drain its backlog and then close
	// its socket; nothing already queued is lost.
	for _, cn := range conns {
		if cn != nil {
			close(cn.out)
		}
	}
	return nil
}

// Drain blocks until all connection loops have exited: the outbound
// queues have been flushed onto the wire and every socket is closed. Call
// it after Close, before process exit, so queued frames (e.g. a final
// barrier release to a peer) are not lost.
func (e *Endpoint) Drain() { e.wg.Wait() }

// LocalAddrs returns n distinct loopback addresses with OS-assigned free
// ports, for single-machine clusters.
func LocalAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}
