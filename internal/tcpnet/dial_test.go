package tcpnet

// Internal tests for the dial-retry policy: backoff must cap, attempts
// must bound the total wait, and exhaustion must surface a wrapped error
// instead of retrying forever.

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// deadAddr returns a loopback address with nothing listening on it.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDialRetryGivesUp(t *testing.T) {
	addr := deadAddr(t)
	const attempts = 5
	start := time.Now()
	c, err := dialRetryWith(addr, attempts, time.Millisecond, 4*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		c.Close()
		t.Fatal("dialRetryWith succeeded against a dead address")
	}
	if !strings.Contains(err.Error(), "gave up after 5 attempts") {
		t.Errorf("error %q does not name the attempt limit", err)
	}
	var opErr *net.OpError
	if !errors.As(err, &opErr) {
		t.Errorf("error %q does not wrap the underlying net error", err)
	}
	// Backoff schedule 1+2+4+4 ms plus four dial round trips: well under a
	// second even on a loaded host. The old fixed-sleep loop took 1 s+.
	if elapsed > 5*time.Second {
		t.Errorf("dialRetryWith took %v; backoff or attempt limit not applied", elapsed)
	}
}

func TestDialRetrySucceedsAfterListenerAppears(t *testing.T) {
	addr := deadAddr(t)
	go func() {
		time.Sleep(20 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial side will report failure
		}
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
		ln.Close()
	}()
	c, err := dialRetryWith(addr, dialRetryAttempts, dialRetryBase, dialRetryCap)
	if err != nil {
		t.Fatalf("dialRetryWith did not recover once the listener appeared: %v", err)
	}
	c.Close()
}
