package tcpnet_test

import (
	"bytes"
	"sync"
	"testing"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/lapi"
	"golapi/internal/tcpnet"
)

// TestRawMeshDelivery exercises the transport alone: every rank sends to
// every other rank; all frames arrive intact with correct sources.
func TestRawMeshDelivery(t *testing.T) {
	const n = 3
	addrs, err := tcpnet.LocalAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	rts := make([]*exec.RealRuntime, n)
	eps := make([]*tcpnet.Endpoint, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		rts[i] = exec.NewRealRuntime()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep, err := tcpnet.Dial(rts[i], i, n, addrs, 4096)
			if err != nil {
				t.Error(err)
				return
			}
			eps[i] = ep
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	type rx struct {
		src  int
		data string
	}
	got := make([][]rx, n)
	var mu sync.Mutex
	done := make(chan struct{}, n*(n-1))
	for i := 0; i < n; i++ {
		i := i
		eps[i].SetDeliver(func(src int, data []byte) {
			mu.Lock()
			got[i] = append(got[i], rx{src, string(data)})
			mu.Unlock()
			done <- struct{}{}
		})
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			eps[i].Send(nil, j, []byte{byte('A' + i)}, nil)
		}
	}
	for k := 0; k < n*(n-1); k++ {
		<-done
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if len(got[i]) != n-1 {
			t.Errorf("rank %d received %d frames", i, len(got[i]))
		}
		for _, r := range got[i] {
			if r.data != string(rune('A'+r.src)) {
				t.Errorf("rank %d: frame %q from %d", i, r.data, r.src)
			}
		}
	}
	for _, ep := range eps {
		ep.Close()
	}
}

// TestLAPIOverTCP runs the full LAPI stack over real sockets with the
// zero-cost model: puts, gets, active messages, Rmw and Gfence, with real
// goroutine concurrency (run with -race).
func TestLAPIOverTCP(t *testing.T) {
	j, err := cluster.NewTCPLAPI(3, lapi.ZeroCost())
	if err != nil {
		t.Fatal(err)
	}
	var amData []byte
	var amMu sync.Mutex
	err = j.Run(func(ctx exec.Context, lt *lapi.Task) {
		buf := lt.Alloc(1 << 16)
		cnt := lt.NewCounter()
		h := lt.RegisterHandler(func(tk *lapi.Task, info *lapi.AmInfo) (lapi.Addr, lapi.CompletionHandler) {
			b := tk.Alloc(info.DataLen)
			return b, func(cctx exec.Context, tk2 *lapi.Task) {
				amMu.Lock()
				amData = append([]byte(nil), tk2.MustBytes(b, info.DataLen)...)
				amMu.Unlock()
			}
		})
		addrs, err := lt.AddressInit(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}

		if lt.Self() == 0 {
			// Multi-packet put (64 KB packets, 200 KB message... the
			// arena block is 64 KB, stay inside it).
			data := make([]byte, 50_000)
			for i := range data {
				data[i] = byte(i * 11)
			}
			cmpl := lt.NewCounter()
			if err := lt.Put(ctx, 1, addrs[1], data, lapi.NoCounter, nil, cmpl); err != nil {
				t.Error(err)
			}
			lt.Waitcntr(ctx, cmpl, 1)

			back := make([]byte, 50_000)
			org := lt.NewCounter()
			if err := lt.Get(ctx, 1, addrs[1], back, lapi.NoCounter, org); err != nil {
				t.Error(err)
			}
			lt.Waitcntr(ctx, org, 1)
			if !bytes.Equal(back, data) {
				t.Error("TCP put/get roundtrip corrupted data")
			}

			if err := lt.Amsend(ctx, 2, h, []byte("hdr"), []byte("tcp active message"), lapi.NoCounter, nil, cmpl); err != nil {
				t.Error(err)
			}
			lt.Waitcntr(ctx, cmpl, 1)

			var prev int64
			lt.Rmw(ctx, lapi.RmwFetchAndAdd, 2, addrs[2], 5, 0, &prev, org)
			lt.Waitcntr(ctx, org, 1)
		}
		lt.Gfence(ctx)
		if lt.Self() == 2 {
			v, _ := lt.ReadInt64(buf)
			if v != 5 {
				t.Errorf("Rmw over TCP: value %d, want 5", v)
			}
		}
		if lt.Self() == 0 {
			// Use cnt so every rank creates identical counter sets.
			_ = cnt
		}
		lt.Barrier(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	amMu.Lock()
	defer amMu.Unlock()
	if string(amData) != "tcp active message" {
		t.Errorf("AM data = %q", amData)
	}
}

// TestLAPIOverTCPConcurrentTraffic stresses the mesh: all ranks hammer all
// ranks with puts and Rmw increments simultaneously.
func TestLAPIOverTCPConcurrentTraffic(t *testing.T) {
	const n = 4
	j, err := cluster.NewTCPLAPI(n, lapi.ZeroCost())
	if err != nil {
		t.Fatal(err)
	}
	var finals [n]int64
	err = j.Run(func(ctx exec.Context, lt *lapi.Task) {
		counterVar := lt.Alloc(8)
		slots := lt.Alloc(8 * n)
		cAddrs, _ := lt.AddressInit(ctx, counterVar)
		sAddrs, _ := lt.AddressInit(ctx, slots)

		org := lt.NewCounter()
		cmpl := lt.NewCounter()
		const reps = 20
		for i := 0; i < reps; i++ {
			for r := 0; r < n; r++ {
				lt.Rmw(ctx, lapi.RmwFetchAndAdd, r, cAddrs[r], 1, 0, nil, org)
				me := []byte{0, 0, 0, 0, 0, 0, 0, byte(lt.Self() + 1)}
				lt.Put(ctx, r, sAddrs[r]+lapi.Addr(8*lt.Self()), me, lapi.NoCounter, nil, cmpl)
			}
			lt.Waitcntr(ctx, org, n)
			lt.Waitcntr(ctx, cmpl, n)
		}
		lt.Gfence(ctx)
		v, _ := lt.ReadInt64(counterVar)
		finals[lt.Self()] = v
		for r := 0; r < n; r++ {
			s, _ := lt.ReadInt64(slots + lapi.Addr(8*r))
			if s != int64(r+1) {
				t.Errorf("rank %d slot %d = %d", lt.Self(), r, s)
			}
		}
		lt.Barrier(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range finals {
		if v != 20*n {
			t.Errorf("rank %d counter = %d, want %d", r, v, 20*n)
		}
	}
}

func TestEndpointMisuse(t *testing.T) {
	addrs, err := tcpnet.LocalAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	rts := [2]*exec.RealRuntime{exec.NewRealRuntime(), exec.NewRealRuntime()}
	eps := [2]*tcpnet.Endpoint{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep, err := tcpnet.Dial(rts[i], i, 2, addrs, 1024)
			if err != nil {
				t.Error(err)
				return
			}
			eps[i] = ep
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 0; i < 2; i++ {
		eps[i].SetDeliver(func(int, []byte) {})
	}

	// Oversize packet panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversize send did not panic")
			}
		}()
		eps[0].Send(nil, 1, make([]byte, 2048), nil)
	}()

	// Close is idempotent; sends after close are dropped, not crashes.
	if err := eps[0].Close(); err != nil {
		t.Error(err)
	}
	if err := eps[0].Close(); err != nil {
		t.Error(err)
	}
	eps[0].Send(nil, 1, []byte("dropped"), nil)
	eps[1].Close()
	eps[0].Drain()
	eps[1].Drain()
}
