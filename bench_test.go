// Package golapi's top-level benchmarks regenerate every table and figure
// of the paper's evaluation. Each benchmark runs the corresponding
// experiment on the simulated SP switch and reports the measured values as
// custom metrics (virtual microseconds / MB/s), alongside the wall-clock
// cost of simulating it.
//
//	go test -bench=. -benchmem
//
// The mapping to the paper:
//
//	BenchmarkTable2_Latency     -> Table 2 (4-byte latency, LAPI vs MPI/MPL)
//	BenchmarkPipelineLatency    -> §4 pipeline latency (Put 16 µs, Get 19 µs)
//	BenchmarkFigure2_Bandwidth  -> Figure 2 (one-way bandwidth vs size)
//	BenchmarkGATable_Latency    -> §5.4 GA single-element latency
//	BenchmarkFigure3_GAPut      -> Figure 3 (GA put bandwidth)
//	BenchmarkFigure4_GAGet      -> Figure 4 (GA get bandwidth)
//	BenchmarkApplication_SCF    -> §5.4 application-level comparison
package golapi_test

import (
	"testing"

	"golapi/internal/bench"
)

func us(ns int64) float64 { return float64(ns) / 1e3 }

func BenchmarkTable2_Latency(b *testing.B) {
	var t2 bench.Table2
	var err error
	for i := 0; i < b.N; i++ {
		t2, err = bench.MeasureTable2(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us(t2.LAPIPolling.Nanoseconds()), "lapi-oneway-µs")
	b.ReportMetric(us(t2.MPIPolling.Nanoseconds()), "mpi-oneway-µs")
	b.ReportMetric(us(t2.LAPIPollingRT.Nanoseconds()), "lapi-rt-µs")
	b.ReportMetric(us(t2.MPIPollingRT.Nanoseconds()), "mpi-rt-µs")
	b.ReportMetric(us(t2.LAPIInterruptRT.Nanoseconds()), "lapi-intr-rt-µs")
	b.ReportMetric(us(t2.MPLInterruptRT.Nanoseconds()), "mpl-rcvncall-rt-µs")
}

func BenchmarkPipelineLatency(b *testing.B) {
	var p bench.Pipeline
	var err error
	for i := 0; i < b.N; i++ {
		p, err = bench.MeasurePipeline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us(p.Put.Nanoseconds()), "put-µs")
	b.ReportMetric(us(p.Get.Nanoseconds()), "get-µs")
}

func BenchmarkFigure2_Bandwidth(b *testing.B) {
	sizes := bench.Figure2Sizes()
	var pts []bench.BandwidthPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.MeasureFigure2(nil, sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.LAPI, "lapi-peak-MB/s")
	b.ReportMetric(last.MPIDefault, "mpi-peak-MB/s")
	b.ReportMetric(float64(bench.HalfPeakSize(pts, func(p bench.BandwidthPoint) float64 { return p.LAPI })), "lapi-halfpeak-B")
	b.ReportMetric(float64(bench.HalfPeakSize(pts, func(p bench.BandwidthPoint) float64 { return p.MPIEager64 })), "mpi-halfpeak-B")
}

func BenchmarkGATable_Latency(b *testing.B) {
	var l bench.GALatency
	var err error
	for i := 0; i < b.N; i++ {
		l, err = bench.MeasureGALatency(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us(l.LAPIGet.Nanoseconds()), "lapi-get-µs")
	b.ReportMetric(us(l.MPLGet.Nanoseconds()), "mpl-get-µs")
	b.ReportMetric(us(l.LAPIPut.Nanoseconds()), "lapi-put-µs")
	b.ReportMetric(us(l.MPLPut.Nanoseconds()), "mpl-put-µs")
}

func BenchmarkFigure3_GAPut(b *testing.B) {
	sizes := bench.Figure34Sizes()
	var pts []bench.GABandwidthPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.MeasureFigure3(nil, sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.LAPI1D, "lapi-1d-peak-MB/s")
	b.ReportMetric(last.LAPI2D, "lapi-2d-peak-MB/s")
	b.ReportMetric(last.MPL1D, "mpl-1d-peak-MB/s")
}

func BenchmarkFigure4_GAGet(b *testing.B) {
	sizes := bench.Figure34Sizes()
	var pts []bench.GABandwidthPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.MeasureFigure4(nil, sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.LAPI1D, "lapi-1d-peak-MB/s")
	b.ReportMetric(last.LAPI2D, "lapi-2d-peak-MB/s")
	b.ReportMetric(last.MPL1D, "mpl-1d-peak-MB/s")
}

func BenchmarkApplication_SCF(b *testing.B) {
	var r bench.AppResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.MeasureApplication(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.LAPITime.Microseconds())/1e3, "lapi-ms")
	b.ReportMetric(float64(r.MPLTime.Microseconds())/1e3, "mpl-ms")
	b.ReportMetric(r.Improvement, "improvement-%")
}
