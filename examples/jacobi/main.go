// Jacobi: a 2-D five-point stencil solver on a Global Array with
// ghost-cell (halo) exchange — the adaptive-grid/PDE side of the paper's
// motivation (§1). Each task owns a block of the grid; every iteration it
// GETs the one-element halo around its block from the neighbouring owners
// (strided 1-D and 2-D sections), relaxes its interior, PUTs the result
// into the next-generation array, and the whole job converges when the
// global residual (a ReduceMax collective) drops below tolerance.
//
// Boundary conditions: the left edge is held at 100, everything else at 0
// — heat spreading across a distributed plate.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"math"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
)

const (
	tasks = 4
	n     = 64 // grid dimension
	tol   = 1e-3
)

func main() {
	c, err := cluster.NewSimDefault(tasks)
	if err != nil {
		log.Fatal(err)
	}
	err = c.Run(func(ctx exec.Context, t *lapi.Task) {
		w, err := ga.NewLAPIWorld(ctx, t, ga.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		cur, _ := w.Create(ctx, n, n)
		next, _ := w.Create(ctx, n, n)

		// Initial and boundary conditions, owner-computes.
		setBoundary := func(a *ga.Array) {
			d := a.Distribution(w.Self())
			for i := d.RLo; i <= d.RHi; i++ {
				for j := d.CLo; j <= d.CHi; j++ {
					if j == 0 {
						a.SetLocal(i, j, 100)
					} else {
						a.SetLocal(i, j, 0)
					}
				}
			}
		}
		setBoundary(cur)
		setBoundary(next)
		w.Sync(ctx)

		mine := cur.Distribution(w.Self())
		// Extended patch: block plus one halo cell on each side,
		// clipped to the grid. One GA get fetches block+halo together
		// (a strided 2-D section that may span up to four owners).
		ext := ga.Patch{
			RLo: max(0, mine.RLo-1), RHi: min(n-1, mine.RHi+1),
			CLo: max(0, mine.CLo-1), CHi: min(n-1, mine.CHi+1),
		}
		buf := make([]float64, ext.Elems())
		out := make([]float64, mine.Elems())

		iters := 0
		for {
			iters++
			if err := cur.Get(ctx, ext, buf, ext.Cols()); err != nil {
				log.Fatal(err)
			}
			at := func(i, j int) float64 { // global coords into ext buffer
				return buf[(i-ext.RLo)*ext.Cols()+(j-ext.CLo)]
			}
			residual := 0.0
			for i := mine.RLo; i <= mine.RHi; i++ {
				for j := mine.CLo; j <= mine.CHi; j++ {
					var v float64
					if i == 0 || i == n-1 || j == 0 || j == n-1 {
						v = at(i, j) // boundary held fixed
					} else {
						v = 0.25 * (at(i-1, j) + at(i+1, j) + at(i, j-1) + at(i, j+1))
					}
					out[(i-mine.RLo)*mine.Cols()+(j-mine.CLo)] = v
					residual = math.Max(residual, math.Abs(v-at(i, j)))
				}
			}
			if err := next.Put(ctx, mine, out, mine.Cols()); err != nil {
				log.Fatal(err)
			}
			worst, err := w.ReduceMax(ctx, residual) // includes a Sync
			if err != nil {
				log.Fatal(err)
			}
			cur, next = next, cur
			if worst < tol {
				break
			}
			if iters > 20000 {
				log.Fatal("did not converge")
			}
		}

		if w.Self() == 0 {
			// Sample the center column temperature profile.
			col := make([]float64, 8)
			cur.Get(ctx, ga.Patch{RLo: n / 2, RHi: n / 2, CLo: 0, CHi: 7}, col, 8)
			fmt.Printf("converged in %d iterations at virtual %v\n", iters, ctx.Now())
			fmt.Printf("temperature profile (row %d, cols 0..7):", n/2)
			for _, v := range col {
				fmt.Printf(" %6.2f", v)
			}
			fmt.Println()
			if col[0] != 100 {
				log.Fatal("boundary condition lost")
			}
			for k := 1; k < 8; k++ {
				if col[k] >= col[k-1] || col[k] < 0 {
					log.Fatalf("profile not monotonically decaying: %v", col)
				}
			}
		}
		w.Sync(ctx)
	})
	if err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
