// Quickstart: a tour of the LAPI API on a simulated 4-node SP system —
// one-sided put/get, an active message with header and completion
// handlers, an atomic read-modify-write, counters, and a global fence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/lapi"
)

func main() {
	c, err := cluster.NewSimDefault(4)
	if err != nil {
		log.Fatal(err)
	}

	err = c.Run(func(ctx exec.Context, t *lapi.Task) {
		// Every task allocates a window of "registered" memory and
		// publishes its address (LAPI_Address_init).
		window := t.Alloc(64)
		addrs, err := t.AddressInit(ctx, window)
		if err != nil {
			log.Fatal(err)
		}

		// An active-message handler: the header handler picks the
		// buffer, the completion handler runs when all data is in.
		greet := t.RegisterHandler(func(tk *lapi.Task, info *lapi.AmInfo) (lapi.Addr, lapi.CompletionHandler) {
			buf := tk.Alloc(info.DataLen)
			from := info.Src
			return buf, func(cctx exec.Context, tk2 *lapi.Task) {
				msg := tk2.MustBytes(buf, info.DataLen)
				fmt.Printf("[task %d @ %v] active message from %d: %q\n",
					tk2.Self(), cctx.Now(), from, msg)
			}
		})

		if t.Self() == 0 {
			// One-sided put: no receive needed at task 1.
			cmpl := t.NewCounter()
			if err := t.Put(ctx, 1, addrs[1], []byte("written remotely"), lapi.NoCounter, nil, cmpl); err != nil {
				log.Fatal(err)
			}
			t.Waitcntr(ctx, cmpl, 1)
			fmt.Printf("[task 0 @ %v] put complete at task 1\n", ctx.Now())

			// Active message to task 2.
			t.Amsend(ctx, 2, greet, nil, []byte("hello from task 0"), lapi.NoCounter, nil, cmpl)
			t.Waitcntr(ctx, cmpl, 1)

			// Atomic fetch-and-add on task 3's memory.
			var prev int64
			org := t.NewCounter()
			t.Rmw(ctx, lapi.RmwFetchAndAdd, 3, addrs[3], 42, 0, &prev, org)
			t.Waitcntr(ctx, org, 1)
			fmt.Printf("[task 0 @ %v] fetch-and-add on task 3: previous value %d\n", ctx.Now(), prev)
		}

		// Global fence: all communication complete everywhere.
		t.Gfence(ctx)

		if t.Self() == 1 {
			fmt.Printf("[task 1 @ %v] my window now holds: %q\n",
				ctx.Now(), t.MustBytes(window, 16))
		}
		if t.Self() == 3 {
			v, _ := t.ReadInt64(window)
			fmt.Printf("[task 3 @ %v] my counter word: %d\n", ctx.Now(), v)
		}

		// Pull the data back with a one-sided get.
		if t.Self() == 2 {
			back := make([]byte, 16)
			org := t.NewCounter()
			t.Get(ctx, 1, addrs[1], back, lapi.NoCounter, org)
			t.Waitcntr(ctx, org, 1)
			fmt.Printf("[task 2 @ %v] got from task 1: %q\n", ctx.Now(), back)
		}
		t.Gfence(ctx)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation finished at virtual time %v\n", c.Now())
}
