// tcpkv: a tiny replicated key-value service built on LAPI active messages
// over REAL TCP sockets — the library running as an actual network system
// rather than under the simulator (zero cost model, wall-clock time).
//
// Rank 0 is the server: an AM header handler stages incoming values, and
// the completion handler applies SET operations to an in-memory store and
// answers GETs with a reply active message. Ranks 1..N-1 are clients
// issuing concurrent operations. This is the paper's extensibility claim
// (§2: users "can add additional communications functions that are
// customized for their specific application") in action.
//
//	go run ./examples/tcpkv
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/lapi"
)

const (
	ranks   = 4 // 1 server + 3 clients
	opsEach = 50
)

// Command opcodes carried in the AM user header.
const (
	opSet byte = iota + 1
	opGet
	opReply
)

func header(op byte, key string, replyCntr lapi.RemoteCounter, slot uint32) []byte {
	h := []byte{op, byte(len(key)), byte(replyCntr >> 8), byte(replyCntr), byte(slot >> 8), byte(slot)}
	return append(h, key...)
}

func parseHeader(b []byte) (op byte, key string, replyCntr lapi.RemoteCounter, slot uint32) {
	op = b[0]
	keyLen := int(b[1])
	replyCntr = lapi.RemoteCounter(uint32(b[2])<<8 | uint32(b[3]))
	slot = uint32(b[4])<<8 | uint32(b[5])
	key = string(b[6 : 6+keyLen])
	return
}

func main() {
	j, err := cluster.NewTCPLAPI(ranks, lapi.ZeroCost())
	if err != nil {
		log.Fatal(err)
	}

	// End-to-end wall time of the whole real-TCP job, read in main outside
	// any activity: there is one RealRuntime per rank, so no single virtual
	// clock spans the job.
	start := time.Now() //lapivet:ignore simdeterminism real-TCP example; whole-job wall time, no activity context here
	var served int
	var servedMu sync.Mutex

	err = j.Run(func(ctx exec.Context, t *lapi.Task) {
		// Reply slots: each client pre-allocates buffers the server
		// writes answers into, plus a counter the reply AM bumps.
		const slotSize = 128
		slots := t.Alloc(slotSize * opsEach)
		replyCntr := t.NewCounter()

		// The reply handler (registered on every rank; used by clients).
		replyH := t.RegisterHandler(func(tk *lapi.Task, info *lapi.AmInfo) (lapi.Addr, lapi.CompletionHandler) {
			_, _, _, slot := parseHeader(info.UHdr)
			return slots + lapi.Addr(slotSize*slot), nil
		})

		// The server handler: SET stores, GET replies with another AM.
		store := map[string][]byte{}
		serverH := t.RegisterHandler(func(tk *lapi.Task, info *lapi.AmInfo) (lapi.Addr, lapi.CompletionHandler) {
			op, key, rc, slot := parseHeader(info.UHdr)
			src := info.Src
			var stage lapi.Addr
			if info.DataLen > 0 {
				stage = tk.Alloc(info.DataLen)
			}
			n := info.DataLen
			return stage, func(cctx exec.Context, tk2 *lapi.Task) {
				servedMu.Lock()
				served++
				servedMu.Unlock()
				switch op {
				case opSet:
					store[key] = append([]byte(nil), tk2.MustBytes(stage, n)...)
					tk2.Free(stage)
					// Ack with an empty reply.
					tk2.Amsend(cctx, src, replyH, header(opReply, key, 0, slot), nil, rc, nil, nil)
				case opGet:
					val := store[key]
					tk2.Amsend(cctx, src, replyH, header(opReply, key, 0, slot), val, rc, nil, nil)
				}
			}
		})

		t.Barrier(ctx)

		if t.Self() == 0 {
			// Server: fully passive — progress is interrupt-driven.
			t.Barrier(ctx)
			fmt.Printf("server: store holds %d keys\n", len(store))
			return
		}

		// Clients: each SET is followed by a GET of the same key.
		for i := 0; i < opsEach; i++ {
			if i%2 == 0 {
				key := fmt.Sprintf("client%d-key%d", t.Self(), i%10)
				val := []byte(fmt.Sprintf("value-%d-%d", t.Self(), i))
				t.Amsend(ctx, 0, serverH, header(opSet, key, replyCntr.ID(), uint32(i)), val, lapi.NoCounter, nil, nil)
				t.Waitcntr(ctx, replyCntr, 1)
			} else {
				key := fmt.Sprintf("client%d-key%d", t.Self(), (i-1)%10)
				t.Amsend(ctx, 0, serverH, header(opGet, key, replyCntr.ID(), uint32(i)), nil, lapi.NoCounter, nil, nil)
				t.Waitcntr(ctx, replyCntr, 1)
				got := t.MustBytes(slots+lapi.Addr(slotSize*i), 32)
				want := fmt.Sprintf("value-%d-%d", t.Self(), i-1)
				if string(got[:len(want)]) != want {
					log.Fatalf("client %d: got %q want %q", t.Self(), got[:len(want)], want)
				}
			}
		}
		fmt.Printf("client %d: %d ops complete\n", t.Self(), opsEach)
		t.Barrier(ctx)
	})
	if err != nil {
		log.Fatal(err)
	}
	servedMu.Lock()
	defer servedMu.Unlock()
	fmt.Printf("served %d requests over real TCP in %v\n", //lapivet:ignore simdeterminism real-TCP example; whole-job wall time
		served, time.Since(start).Round(time.Millisecond))
}
