// Histogram: the kind of dynamic, unpredictable communication pattern the
// paper motivates LAPI with (§1: "applications that use sparse matrices,
// adaptive grids, any kind of indirect array references, or dynamic load
// balancing").
//
// Each task draws values from its own skewed distribution and increments
// histogram bins that are block-distributed across all tasks, using atomic
// remote fetch-and-add — no receiver cooperation, no pre-agreed
// communication schedule. A final Gfence makes all updates visible and
// task 0 verifies the total.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/lapi"
)

const (
	tasks       = 4
	bins        = 64
	perTask     = 1000
	binsPerTask = bins / tasks
)

func main() {
	c, err := cluster.NewSimDefault(tasks)
	if err != nil {
		log.Fatal(err)
	}

	err = c.Run(func(ctx exec.Context, t *lapi.Task) {
		// Each task hosts a slice of the histogram.
		local := t.Alloc(8 * binsPerTask)
		bases, err := t.AddressInit(ctx, local)
		if err != nil {
			log.Fatal(err)
		}
		t.Barrier(ctx)

		// Generate values with a deterministic per-task generator
		// (skewed so traffic is irregular), and scatter increments.
		org := t.NewCounter()
		pendingRmw := 0
		seed := uint64(t.Self())*2654435761 + 12345
		for i := 0; i < perTask; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			// Skew: square the uniform draw toward low bins.
			u := float64(seed>>11) / float64(1<<53)
			bin := int(u * u * bins)
			if bin >= bins {
				bin = bins - 1
			}
			owner := bin / binsPerTask
			slot := bin % binsPerTask
			if err := t.Rmw(ctx, lapi.RmwFetchAndAdd, owner,
				bases[owner]+lapi.Addr(8*slot), 1, 0, nil, org); err != nil {
				log.Fatal(err)
			}
			pendingRmw++
			// Keep a bounded pipeline of outstanding atomics.
			if pendingRmw == 32 {
				t.Waitcntr(ctx, org, pendingRmw)
				pendingRmw = 0
			}
		}
		if pendingRmw > 0 {
			t.Waitcntr(ctx, org, pendingRmw)
		}

		t.Gfence(ctx)

		// Task 0 gathers the full histogram with one-sided gets.
		if t.Self() == 0 {
			histo := make([]int64, bins)
			get := t.NewCounter()
			for owner := 0; owner < tasks; owner++ {
				buf := make([]byte, 8*binsPerTask)
				t.Get(ctx, owner, bases[owner], buf, lapi.NoCounter, get)
				t.Waitcntr(ctx, get, 1)
				for s := 0; s < binsPerTask; s++ {
					v := int64(0)
					for b := 0; b < 8; b++ {
						v = v<<8 | int64(buf[8*s+b])
					}
					histo[owner*binsPerTask+s] = v
				}
			}
			total := int64(0)
			fmt.Println("bin histogram (one * per 16 counts):")
			for b, v := range histo {
				total += v
				fmt.Printf("%3d %5d ", b, v)
				for i := int64(0); i < v/16; i++ {
					fmt.Print("*")
				}
				fmt.Println()
			}
			fmt.Printf("total %d (want %d)\n", total, tasks*perTask)
			if total != tasks*perTask {
				log.Fatal("histogram lost updates!")
			}
		}
		t.Barrier(ctx)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done at virtual time %v\n", c.Now())
}
