// Transpose: out-of-place distributed matrix transpose with Global Arrays
// — the classic strided-access workload. Every element read and written
// crosses the block distribution "the wrong way", so the communication is
// dominated by non-contiguous (2-D) sections: exactly the case the paper's
// §6 future work targets with a vector Put/Get interface.
//
// The example runs the same transpose twice — once with the paper's hybrid
// AM protocols and once with the strided-vector extension — verifies both
// give the same matrix, and reports the virtual-time speedup.
//
//	go run ./examples/transpose
package main

import (
	"fmt"
	"log"
	"time"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
)

const (
	tasks = 4
	n     = 256 // matrix dimension
	tile  = 64  // transpose tile (strided patches on both sides)
)

func main() {
	t1, sum1 := transpose(false)
	t2, sum2 := transpose(true)
	if sum1 != sum2 {
		log.Fatalf("results differ: %g vs %g", sum1, sum2)
	}
	fmt.Printf("\nchecksum %.6g identical on both protocol stacks\n", sum1)
	fmt.Printf("AM/hybrid protocols: %8.2f ms\n", ms(t1))
	fmt.Printf("§6 vector ops:       %8.2f ms\n", ms(t2))
	fmt.Printf("speedup: %.2fx\n", t1.Seconds()/t2.Seconds())
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func transpose(useVectorOps bool) (time.Duration, float64) {
	var elapsed time.Duration
	var checksum float64

	c, err := cluster.NewSimDefault(tasks)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ga.DefaultConfig()
	cfg.UseVectorOps = useVectorOps

	err = c.Run(func(ctx exec.Context, t *lapi.Task) {
		w, err := ga.NewLAPIWorld(ctx, t, cfg)
		if err != nil {
			log.Fatal(err)
		}
		A, err := w.Create(ctx, n, n)
		if err != nil {
			log.Fatal(err)
		}
		B, _ := w.Create(ctx, n, n)

		// Fill A from its owners: A[i][j] = i*n + j.
		d := A.Distribution(w.Self())
		for i := d.RLo; i <= d.RHi; i++ {
			for j := d.CLo; j <= d.CHi; j++ {
				A.SetLocal(i, j, float64(i*n+j))
			}
		}
		w.Sync(ctx)
		start := ctx.Now()

		// Tiles are dealt round-robin by linear index.
		tilesPerDim := n / tile
		buf := make([]float64, tile*tile)
		tbuf := make([]float64, tile*tile)
		for idx := 0; idx < tilesPerDim*tilesPerDim; idx++ {
			if idx%w.N() != w.Self() {
				continue
			}
			ti, tj := idx/tilesPerDim, idx%tilesPerDim
			src := ga.Patch{
				RLo: ti * tile, RHi: (ti+1)*tile - 1,
				CLo: tj * tile, CHi: (tj+1)*tile - 1,
			}
			if err := A.Get(ctx, src, buf, tile); err != nil {
				log.Fatal(err)
			}
			// Local transpose of the tile.
			for r := 0; r < tile; r++ {
				for cc := 0; cc < tile; cc++ {
					tbuf[cc*tile+r] = buf[r*tile+cc]
				}
			}
			dst := ga.Patch{
				RLo: tj * tile, RHi: (tj+1)*tile - 1,
				CLo: ti * tile, CHi: (ti+1)*tile - 1,
			}
			if err := B.Put(ctx, dst, tbuf, tile); err != nil {
				log.Fatal(err)
			}
		}
		w.Sync(ctx)
		if w.Self() == 0 {
			elapsed = ctx.Now() - start
		}

		// Verify B = A^T (each rank checks its own block of B).
		bd := B.Distribution(w.Self())
		for i := bd.RLo; i <= bd.RHi; i++ {
			for j := bd.CLo; j <= bd.CHi; j++ {
				if got := B.At(i, j); got != float64(j*n+i) {
					log.Fatalf("B[%d][%d] = %g, want %d", i, j, got, j*n+i)
				}
			}
		}
		// Checksum of one sample row via a 1-D get.
		if w.Self() == 0 {
			row := make([]float64, n)
			B.Get(ctx, ga.Patch{RLo: 17, RHi: 17, CLo: 0, CHi: n - 1}, row, n)
			for _, v := range row {
				checksum += v
			}
		}
		w.Sync(ctx)
	})
	if err != nil {
		log.Fatal(err)
	}
	stack := "AM/hybrid"
	if useVectorOps {
		stack = "vector"
	}
	fmt.Printf("%-9s stack: %dx%d transpose on %d tasks -> %v virtual\n", stack, n, n, tasks, elapsed)
	return elapsed, checksum
}
