// Allreduce: collective operations layered purely on LAPI's one-sided
// primitives (§6 of the paper positions LAPI as the substrate for exactly
// this kind of higher-level library).
//
// Every task contributes a vector of partial sums; one collective call
// leaves the global sum on every task. The communicator picks its schedule
// by message size — recursive doubling (latency-optimal) for small
// vectors, ring reduce-scatter + allgather (bandwidth-optimal) for large
// ones — the same kind of tunable crossover MP_EAGER_LIMIT provides for
// point-to-point protocols.
//
//	go run ./examples/allreduce
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"golapi/internal/cluster"
	"golapi/internal/collective"
	"golapi/internal/exec"
	"golapi/internal/lapi"
)

const (
	tasks = 4
	elems = 8
)

func main() {
	j, err := cluster.NewSimDefault(tasks)
	if err != nil {
		log.Fatal(err)
	}

	err = cluster.RunWithComm(j, collective.DefaultConfig(),
		func(ctx exec.Context, t *lapi.Task, c *collective.Comm) {
			// Each rank's contribution: element i holds (rank+1)·(i+1).
			buf := make([]byte, 8*elems)
			for i := 0; i < elems; i++ {
				v := int64((c.Rank() + 1) * (i + 1))
				binary.BigEndian.PutUint64(buf[8*i:], uint64(v))
			}

			if err := c.Allreduce(ctx, buf, collective.OpSumI64); err != nil {
				log.Fatal(err)
			}

			if c.Rank() == 0 {
				fmt.Printf("allreduce over %d tasks (alg=%s for %d bytes):\n",
					c.Size(), c.AlgFor(len(buf)), len(buf))
				for i := 0; i < elems; i++ {
					got := int64(binary.BigEndian.Uint64(buf[8*i:]))
					// Sum over ranks of (rank+1)(i+1) = 10·(i+1) for 4 tasks.
					fmt.Printf("  elem %d = %3d (want %3d)\n", i, got, 10*(i+1))
				}
			}

			// A reduction to one root and a broadcast from it, same substrate.
			one := make([]byte, 8)
			binary.BigEndian.PutUint64(one, uint64(c.Rank()+1))
			if err := c.Reduce(ctx, 0, one, collective.OpSumI64); err != nil {
				log.Fatal(err)
			}
			if err := c.Bcast(ctx, 0, one); err != nil {
				log.Fatal(err)
			}
			if err := c.Barrier(ctx); err != nil {
				log.Fatal(err)
			}
			if c.Rank() == tasks-1 {
				fmt.Printf("reduce+bcast: every rank now holds %d (want %d)\n",
					binary.BigEndian.Uint64(one), tasks*(tasks+1)/2)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
}
