// SCF: a self-consistent-field-style Global Arrays application — the
// workload class the paper's project was started for (§1: "electronic
// structure calculations"; §5.4 lists SCF among the codes that gained
// 10-50% from the LAPI port).
//
// The kernel iterates a blocked matrix contraction with dynamic load
// balancing: tasks draw work tickets from a shared counter (GA's
// read-and-increment), fetch the blocks they need with one-sided gets,
// compute locally, and combine results with atomic accumulate. The same
// program runs on the LAPI and MPL backends; the example prints both
// virtual execution times and the improvement, mirroring §5.4.
//
//	go run ./examples/scf
package main

import (
	"fmt"
	"log"
	"time"

	"golapi/internal/cluster"
	"golapi/internal/exec"
	"golapi/internal/ga"
	"golapi/internal/lapi"
	"golapi/internal/mpi"
	"golapi/internal/mpl"
	"golapi/internal/switchnet"
)

const (
	tasks     = 4
	nblocks   = 4  // 4x4 grid of work tickets
	blockSize = 48 // 48x48 doubles per block
	n         = nblocks * blockSize
	iters     = 2     // SCF iterations
	flopRate  = 480e6 // modelled local compute rate
)

func main() {
	lapiTime, checksum1 := run("LAPI")
	mplTime, checksum2 := run("MPL")
	if checksum1 != checksum2 {
		log.Fatalf("backends disagree: %g vs %g", checksum1, checksum2)
	}
	fmt.Printf("\nresult checksum: %.6g (identical on both backends)\n", checksum1)
	fmt.Printf("LAPI: %8.2f ms\nMPL:  %8.2f ms\nimprovement: %.0f%%  (paper: 10-50%%)\n",
		ms(lapiTime), ms(mplTime), 100*(1-lapiTime.Seconds()/mplTime.Seconds()))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func run(backend string) (time.Duration, float64) {
	var elapsed time.Duration
	var checksum float64

	kernel := func(ctx exec.Context, w *ga.World) {
		F, err := w.Create(ctx, n, n) // "Fock"-like matrix being built
		if err != nil {
			log.Fatal(err)
		}
		D, _ := w.Create(ctx, n, n) // "density"-like input matrix
		tickets, err := w.CreateCounter(ctx)
		if err != nil {
			log.Fatal(err)
		}

		// Initialize the density matrix from its owners.
		d := D.Distribution(w.Self())
		for i := d.RLo; i <= d.RHi; i++ {
			for j := d.CLo; j <= d.CHi; j++ {
				D.SetLocal(i, j, 1.0/float64(1+i+j))
			}
		}
		w.Sync(ctx)
		start := ctx.Now()

		patch := func(bi, bj int) ga.Patch {
			return ga.Patch{
				RLo: bi * blockSize, RHi: (bi+1)*blockSize - 1,
				CLo: bj * blockSize, CHi: (bj+1)*blockSize - 1,
			}
		}
		dBuf := make([]float64, blockSize*blockSize)
		fBuf := make([]float64, blockSize*blockSize)

		for it := 0; it < iters; it++ {
			done := 0
			for {
				tk, err := tickets.ReadInc(ctx, 1)
				if err != nil {
					log.Fatal(err)
				}
				tk -= int64(it * nblocks * nblocks) // per-iteration ticket window
				if tk >= nblocks*nblocks {
					break
				}
				bi, bj := int(tk)/nblocks, int(tk)%nblocks
				// "Integral" contribution needs a remote block of D.
				if err := D.Get(ctx, patch(bj, bi), dBuf, blockSize); err != nil {
					log.Fatal(err)
				}
				// Local two-electron-ish work: charged compute.
				for k := range fBuf {
					fBuf[k] = 0.5 * dBuf[k] * float64(1+it)
				}
				flops := 4 * blockSize * blockSize
				ctx.Sleep(time.Duration(float64(flops) / flopRate * float64(time.Second)))
				// Atomic accumulate into the shared result.
				if err := F.Acc(ctx, patch(bi, bj), fBuf, blockSize, 1.0); err != nil {
					log.Fatal(err)
				}
				done++
			}
			w.Sync(ctx)
		}

		if w.Self() == 0 {
			elapsed = ctx.Now() - start
			// Deterministic checksum of a sample patch.
			smp := make([]float64, blockSize*blockSize)
			F.Get(ctx, patch(1, 2), smp, blockSize)
			for _, v := range smp {
				checksum += v
			}
		}
		w.Sync(ctx)
	}

	switch backend {
	case "LAPI":
		c, err := cluster.NewSimDefault(tasks)
		if err != nil {
			log.Fatal(err)
		}
		err = c.Run(func(ctx exec.Context, t *lapi.Task) {
			w, err := ga.NewLAPIWorld(ctx, t, ga.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			kernel(ctx, w)
		})
		if err != nil {
			log.Fatal(err)
		}
	case "MPL":
		mcfg := mpi.DefaultConfig()
		mcfg.EagerLimit = mcfg.MaxEagerLimit
		c, err := cluster.NewSimMPL(tasks, switchnet.DefaultConfig(), mcfg)
		if err != nil {
			log.Fatal(err)
		}
		err = c.Run(func(ctx exec.Context, t *mpl.Task) {
			w, err := ga.NewMPLWorld(ctx, t, ga.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			kernel(ctx, w)
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-5s backend: %d tasks, %dx%d matrix, %d iterations -> %v virtual\n",
		backend, tasks, n, n, iters, elapsed)
	return elapsed, checksum
}
